"""Client-facing clock query protocol: the paper's Section 1 service.

The applications that motivate the paper — time-stamping, expiring
payments and bids, Kerberos-style freshness — are *clients* of a
synchronized node, not participants in Sync.  This module gives them a
wire protocol:

* :class:`TimeQueryServer` fronts one live node's
  :class:`~repro.service.timeservice.SecureTimeService` on its own UDP
  endpoint, answering :class:`TimeQuery` requests — ``now``,
  ``validate_timestamp``, ``epoch`` — at *estimation cost*: each answer
  is one logical-clock read plus Theorem 5 bound arithmetic, never a
  Sync round.  Query load therefore scales independently of protocol
  traffic (the Section 3.3 "no rounds" property doing application work).
* :class:`TimeQueryClient` is a small asyncio client.  Requests carry a
  client-chosen ``qid``; replies are matched by it, so any number of
  queries may be in flight on one socket (the load benchmark drives
  tens of thousands).

Queries and replies are ordinary codec payloads (struct-packed binary,
legacy JSON accepted — :mod:`repro.rt.codec`), framed exactly like
cluster datagrams with the client in the sender slot (clients use
negative ids so they can never collide with a node id).  The reply's
``sent_at`` stamp is the serving node's *logical clock* at answer time,
so a client gets a server clock reading with every reply for free.

The transport-free core is :func:`answer_query`: the UDP server is a
thin shell around it, and the loopback-vs-UDP conformance tests hold
the two paths to identical answers.
"""

from __future__ import annotations

import asyncio
import itertools
import struct
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, ReproError
from repro.rt.codec import (
    TransportError,
    decode_datagram,
    encode_datagram,
    register_payload,
)
from repro.service.timeservice import SecureTimeService, Timestamp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.live import ClusterIntrospection
    from repro.obs.metricsreg import MetricsRegistry

#: Query operations (the ``op`` field of :class:`TimeQuery`).
OP_NOW = "now"
OP_VALIDATE = "validate"
OP_EPOCH = "epoch"
#: Admin introspection operations: answered with an :class:`AdminReply`
#: carrying the cluster's stats/health document (see
#: :class:`repro.obs.live.ClusterIntrospection`); require the server to
#: be wired with an introspection object, else they fail ``ok=False``.
OP_STATS = "stats"
OP_HEALTH = "health"

#: Sender id used by clients when none is given: outside the node-id
#: space (node ids are >= 0), so a reply can never be mistaken for
#: cluster traffic.
DEFAULT_CLIENT_ID = -1


class QueryError(ReproError):
    """A time query failed (server-side error reply, or timeout)."""


@dataclass(frozen=True)
class TimeQuery:
    """One client request against a node's secure time service.

    Attributes:
        op: ``"now"``, ``"validate"``, ``"epoch"``, or an admin op
            (``"stats"`` / ``"health"``).
        qid: Client-chosen correlation id echoed in the reply.
        ts_value: For ``validate``: the timestamp's clock value.
        ts_issuer: For ``validate``: the issuing node id.
        max_age: For ``validate``: the freshness window.
        epoch_length: For ``epoch``: the epoch length.
    """

    op: str
    qid: int
    ts_value: float = 0.0
    ts_issuer: int = 0
    max_age: float = 0.0
    epoch_length: float = 0.0


@dataclass(frozen=True)
class TimeReply:
    """A node's answer to one :class:`TimeQuery`.

    Attributes:
        qid: Echo of the request's correlation id.
        ok: False iff the query itself failed (unknown op, invalid
            arguments).  A ``validate`` verdict of "stale" is still
            ``ok=True`` — the *query* succeeded.
        value: ``now`` -> clock value; ``validate`` -> 1.0/0.0 verdict;
            ``epoch`` -> the epoch number.
        node: The answering node id.
        error: Human-readable reason when ``ok`` is False.
    """

    qid: int
    ok: bool
    value: float = 0.0
    node: int = -1
    error: str = ""


@dataclass(frozen=True)
class AdminReply:
    """A node's answer to a ``stats`` / ``health`` introspection query.

    Travels as a generic (key-prefixed JSON) codec body on both wires:
    introspection documents are nested dicts of unpredictable shape, so
    a struct packer would buy nothing on this cold path.

    Attributes:
        qid: Echo of the request's correlation id.
        ok: False iff the query failed (introspection not enabled).
        node: The answering node id.
        kind: ``"stats"`` or ``"health"``.
        payload: The introspection document (empty when ``ok`` is
            False).
        error: Human-readable reason when ``ok`` is False.
    """

    qid: int
    ok: bool
    node: int = -1
    kind: str = ""
    payload: dict = field(default_factory=dict)
    error: str = ""


# ---------------------------------------------------------------------------
# Binary packers (registered alongside ping/pong in the codec registry)
# ---------------------------------------------------------------------------

_OP_CODES = {OP_NOW: 1, OP_VALIDATE: 2, OP_EPOCH: 3, OP_STATS: 4,
             OP_HEALTH: 5}
_OP_NAMES = {code: op for op, code in _OP_CODES.items()}

_QUERY = struct.Struct("!Bqdidd")
_REPLY = struct.Struct("!qBdi")


def _pack_query(payload: TimeQuery) -> bytes:
    code = _OP_CODES.get(payload.op)
    if code is None:
        # An unknown op still travels (the server answers ok=False with
        # a reason); code 0 marks "op not in this codec's table".
        code = 0
    return _QUERY.pack(code, payload.qid, payload.ts_value,
                       payload.ts_issuer, payload.max_age,
                       payload.epoch_length)


def _unpack_query(body: bytes) -> TimeQuery:
    code, qid, ts_value, ts_issuer, max_age, epoch_length = _QUERY.unpack(body)
    return TimeQuery(op=_OP_NAMES.get(code, f"op#{code}"), qid=qid,
                     ts_value=ts_value, ts_issuer=ts_issuer,
                     max_age=max_age, epoch_length=epoch_length)


def _pack_reply(payload: TimeReply) -> bytes:
    return (_REPLY.pack(payload.qid, 1 if payload.ok else 0, payload.value,
                        payload.node)
            + payload.error.encode("utf-8"))


def _unpack_reply(body: bytes) -> TimeReply:
    qid, ok, value, node = _REPLY.unpack_from(body)
    return TimeReply(qid=qid, ok=bool(ok), value=value, node=node,
                     error=body[_REPLY.size:].decode("utf-8"))


register_payload("tq", TimeQuery, tag=16, pack=_pack_query,
                 unpack=_unpack_query)
register_payload("tr", TimeReply, tag=17, pack=_pack_reply,
                 unpack=_unpack_reply)
register_payload("ar", AdminReply)


# ---------------------------------------------------------------------------
# Transport-free dispatch (the conformance anchor)
# ---------------------------------------------------------------------------


def answer_query(service: SecureTimeService, query: TimeQuery,
                 node_id: int | None = None,
                 introspection: "ClusterIntrospection | None" = None
                 ) -> TimeReply | AdminReply:
    """Answer one query against a service — the whole server semantics.

    Every time-query path costs one clock read plus bound arithmetic
    (estimation cost); errors become ``ok=False`` replies, never
    exceptions, so a misbehaving client cannot take the server down.
    The admin ops (``stats`` / ``health``) return an :class:`AdminReply`
    rendered from ``introspection`` — or an ``ok=False`` one when the
    server was not wired for introspection.
    """
    node = service.process.node_id if node_id is None else node_id
    if query.op in (OP_STATS, OP_HEALTH):
        if introspection is None:
            return AdminReply(qid=query.qid, ok=False, node=node,
                              kind=query.op,
                              error="introspection not enabled")
        try:
            payload = (introspection.stats() if query.op == OP_STATS
                       else introspection.health())
            return AdminReply(qid=query.qid, ok=True, node=node,
                              kind=query.op, payload=payload)
        except ReproError as exc:
            return AdminReply(qid=query.qid, ok=False, node=node,
                              kind=query.op, error=str(exc))
    try:
        if query.op == OP_NOW:
            return TimeReply(qid=query.qid, ok=True, value=service.now(),
                             node=node)
        if query.op == OP_VALIDATE:
            fresh = service.validate_timestamp(
                Timestamp(value=query.ts_value, issuer=query.ts_issuer),
                query.max_age)
            return TimeReply(qid=query.qid, ok=True,
                             value=1.0 if fresh else 0.0, node=node)
        if query.op == OP_EPOCH:
            return TimeReply(qid=query.qid, ok=True,
                             value=float(service.epoch(query.epoch_length)),
                             node=node)
        return TimeReply(qid=query.qid, ok=False, node=node,
                         error=f"unknown query op {query.op!r}")
    except ReproError as exc:
        return TimeReply(qid=query.qid, ok=False, node=node, error=str(exc))


# ---------------------------------------------------------------------------
# UDP server
# ---------------------------------------------------------------------------


class _QueryEndpoint(asyncio.DatagramProtocol):
    """asyncio glue shared by server and client endpoints."""

    def __init__(self, on_datagram) -> None:
        self._on_datagram = on_datagram

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        self._on_datagram(data, addr)


class TimeQueryServer:
    """A live node's public time endpoint.

    Args:
        service: The node's :class:`SecureTimeService` (fronting its
            live, Sync-corrected clock).
        node_id: Identity stamped into replies; defaults to the
            service's node.
        wire: Outbound encoding (``"binary"`` or ``"json"``); inbound
            queries are accepted in both forms.
        metrics: Optional :class:`~repro.obs.metricsreg.MetricsRegistry`
            — when given, every answered query records its service time
            into the node's ``query_latency_seconds`` log-bucketed
            histogram.  ``None`` (the default) keeps the query path
            free of any telemetry work, the PR 2 attribute-guard
            contract.
        introspection: Optional
            :class:`~repro.obs.live.ClusterIntrospection` enabling the
            ``stats`` / ``health`` admin ops.

    Attributes:
        address: ``(host, port)`` after :meth:`start`.
        queries_answered: Total replies sent (including error replies).
        queries_failed: Replies with ``ok=False``.
        malformed_dropped: Datagrams that were not decodable queries.
    """

    def __init__(self, service: SecureTimeService, node_id: int | None = None,
                 wire: str = "binary",
                 metrics: "MetricsRegistry | None" = None,
                 introspection: "ClusterIntrospection | None" = None) -> None:
        if wire not in ("binary", "json"):
            raise ConfigurationError(f"unknown wire format {wire!r}")
        self.service = service
        self.node_id = (service.process.node_id if node_id is None
                        else int(node_id))
        self.wire = wire
        self.introspection = introspection
        self._latency = (metrics.latency_histogram("query_latency_seconds",
                                                   self.node_id)
                         if metrics is not None else None)
        self._endpoint = None
        self.address: tuple[str, int] | None = None
        self.queries_answered = 0
        self.queries_failed = 0
        self.malformed_dropped = 0

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> tuple[str, int]:
        """Bind the query socket; returns the actual ``(host, port)``."""
        loop = asyncio.get_running_loop()
        self._endpoint, _ = await loop.create_datagram_endpoint(
            lambda: _QueryEndpoint(self._on_datagram),
            local_addr=(host, port))
        sockname = self._endpoint.get_extra_info("sockname")
        self.address = (sockname[0], sockname[1])
        return self.address

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None

    def _on_datagram(self, data: bytes, addr: tuple) -> None:
        try:
            sender, _recipient, payload, _sent_at = decode_datagram(data)
        except TransportError:
            self.malformed_dropped += 1
            return
        if not isinstance(payload, TimeQuery):
            self.malformed_dropped += 1
            return
        started = time.perf_counter() if self._latency is not None else 0.0
        reply = answer_query(self.service, payload, node_id=self.node_id,
                             introspection=self.introspection)
        self.queries_answered += 1
        if not reply.ok:
            self.queries_failed += 1
        if self._endpoint is not None:
            self._endpoint.sendto(
                encode_datagram(self.node_id, sender, reply,
                                self.service.now(), wire=self.wire), addr)
        if self._latency is not None:
            self._latency.observe(time.perf_counter() - started)


# ---------------------------------------------------------------------------
# asyncio client
# ---------------------------------------------------------------------------


class TimeQueryClient:
    """Asyncio client for a :class:`TimeQueryServer`.

    Any number of requests may be outstanding at once (replies match on
    ``qid``), which is what the load benchmark leans on; the convenience
    coroutines (:meth:`now`, :meth:`validate_timestamp`, :meth:`epoch`)
    are one-shot request/reply.

    Args:
        host: Server host.
        port: Server port.
        client_id: Sender id stamped into requests; negative by
            convention (outside the node-id space).
        timeout: Per-request reply timeout in seconds.
        wire: Outbound encoding (``"binary"`` or ``"json"``).

    Attributes:
        replies_unmatched: Replies whose qid had no waiter (late
            arrivals after a timeout).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 client_id: int = DEFAULT_CLIENT_ID, timeout: float = 1.0,
                 wire: str = "binary") -> None:
        if wire not in ("binary", "json"):
            raise ConfigurationError(f"unknown wire format {wire!r}")
        self.host = host
        self.port = int(port)
        self.client_id = int(client_id)
        self.timeout = float(timeout)
        self.wire = wire
        self._endpoint = None
        self._qids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self.replies_unmatched = 0

    async def connect(self) -> None:
        """Open the client socket (connected to the server address)."""
        loop = asyncio.get_running_loop()
        self._endpoint, _ = await loop.create_datagram_endpoint(
            lambda: _QueryEndpoint(self._on_datagram),
            remote_addr=(self.host, self.port))

    def close(self) -> None:
        """Close the socket and fail any outstanding requests."""
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None
        for future in self._pending.values():
            if not future.done():
                future.set_exception(QueryError("client closed"))
        self._pending.clear()

    def _on_datagram(self, data: bytes, addr: tuple) -> None:
        try:
            _sender, _recipient, payload, sent_at = decode_datagram(data)
        except TransportError:
            self.replies_unmatched += 1
            return
        if not isinstance(payload, (TimeReply, AdminReply)):
            self.replies_unmatched += 1
            return
        future = self._pending.pop(payload.qid, None)
        if future is None or future.done():
            self.replies_unmatched += 1
            return
        future.set_result((payload, sent_at))

    # -- raw pipelined interface ---------------------------------------

    def submit(self, op: str, **fields) -> asyncio.Future:
        """Send one query without waiting.

        Returns a future resolving to ``(TimeReply, server_clock)``
        where ``server_clock`` is the reply's ``sent_at`` stamp (the
        serving node's logical clock).  The caller owns timeout policy.
        The query's ``qid`` is exposed as ``future.qid``.
        """
        if self._endpoint is None:
            raise TransportError("client not connected")
        qid = next(self._qids)
        query = TimeQuery(op=op, qid=qid, **fields)
        future = asyncio.get_running_loop().create_future()
        future.qid = qid
        self._pending[qid] = future
        self._endpoint.sendto(
            encode_datagram(self.client_id, -1, query, 0.0, wire=self.wire))
        return future

    async def request(self, op: str, **fields) -> tuple[TimeReply, float]:
        """Send one query and await its reply.

        Raises:
            QueryError: On timeout or an ``ok=False`` reply.
        """
        future = self.submit(op, **fields)
        qid = future.qid
        try:
            reply, server_clock = await asyncio.wait_for(future, self.timeout)
        except asyncio.TimeoutError:
            self._pending.pop(qid, None)
            raise QueryError(
                f"query {op!r} timed out after {self.timeout}s") from None
        if not reply.ok:
            raise QueryError(f"query {op!r} failed: {reply.error}")
        return reply, server_clock

    # -- convenience coroutines ----------------------------------------

    async def now(self) -> float:
        """The serving node's logical clock."""
        reply, _ = await self.request(OP_NOW)
        return reply.value

    async def validate_timestamp(self, value: float, issuer: int,
                                 max_age: float) -> bool:
        """Kerberos-style freshness verdict on a peer-issued timestamp."""
        reply, _ = await self.request(OP_VALIDATE, ts_value=value,
                                      ts_issuer=issuer, max_age=max_age)
        return reply.value == 1.0

    async def epoch(self, length: float) -> int:
        """The serving node's proactive-security epoch number."""
        reply, _ = await self.request(OP_EPOCH, epoch_length=length)
        return int(reply.value)

    async def stats(self) -> dict:
        """The serving node's full introspection document.

        Raises:
            QueryError: Timeout, or introspection not enabled.
        """
        reply, _ = await self.request(OP_STATS)
        return reply.payload

    async def health(self) -> dict:
        """The serving node's live Theorem 5 health document.

        Raises:
            QueryError: Timeout, or introspection not enabled.
        """
        reply, _ = await self.request(OP_HEALTH)
        return reply.payload
