"""repro — reproduction of "Clock Synchronization with Faults and Recoveries".

Barak, Halevi, Herzberg, Naor (PODC 2000): a convergence-function clock
synchronization protocol tolerating a *mobile* Byzantine adversary —
unbounded total faults, at most ``f`` of ``n >= 3f+1`` processors
faulty within any window of length ``PI`` — with automatic recovery and
no fault detection.

Quickstart::

    from repro import mobile_byzantine_scenario, run

    result = run(mobile_byzantine_scenario(duration=20.0, seed=1))
    verdict = result.verdict(warmup=1.0)
    print("max deviation:", verdict.measured_deviation,
          "bound:", verdict.bounds.max_deviation, "ok:", verdict.all_ok)

Layout:

* :mod:`repro.core` — the Sync protocol, parameters/bounds, analysis.
* :mod:`repro.sim` — deterministic discrete-event simulator.
* :mod:`repro.clocks` — drift-bounded hardware clocks.
* :mod:`repro.net` — authenticated bounded-delay links, topologies.
* :mod:`repro.adversary` — mobile f-limited Byzantine adversary.
* :mod:`repro.protocols` — comparison baselines.
* :mod:`repro.metrics` — Definition 3 measurement pipeline.
* :mod:`repro.runner` — scenarios, runs, sweeps.
"""

from repro._version import __version__
from repro.core import (
    PaperConvergence,
    ProtocolParams,
    SyncProcess,
    Theorem5Bounds,
    theorem5_verdict,
)
from repro.errors import (
    AdversaryError,
    CampaignError,
    ClockError,
    ConfigurationError,
    EvaluationError,
    MeasurementError,
    ParameterError,
    ReproError,
    SimulationError,
    StoreError,
    TopologyError,
)
from repro.runner import (
    Campaign,
    CampaignResult,
    EvaluationSpec,
    ResultStore,
    RunRecord,
    RunResult,
    Scenario,
    benign_scenario,
    default_params,
    evaluate,
    mobile_byzantine_scenario,
    recovery_scenario,
    replicate,
    run,
    split_world_scenario,
    sweep,
    two_clique_scenario,
)

__all__ = [
    "__version__",
    # core
    "ProtocolParams",
    "Theorem5Bounds",
    "SyncProcess",
    "PaperConvergence",
    "theorem5_verdict",
    # runner
    "Scenario",
    "RunResult",
    "Campaign",
    "CampaignResult",
    "RunRecord",
    "run",
    "sweep",
    "replicate",
    "default_params",
    "benign_scenario",
    "mobile_byzantine_scenario",
    "recovery_scenario",
    "split_world_scenario",
    "two_clique_scenario",
    # results as data
    "ResultStore",
    "EvaluationSpec",
    "evaluate",
    # errors
    "ReproError",
    "ConfigurationError",
    "ParameterError",
    "TopologyError",
    "SimulationError",
    "ClockError",
    "AdversaryError",
    "MeasurementError",
    "StoreError",
    "EvaluationError",
    "CampaignError",
]
