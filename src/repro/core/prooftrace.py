"""Executable version of the Appendix A induction (Claim 8).

The paper proves Theorem 5 by induction over intervals ``I_i`` of
length ``T``: there are envelopes ``E_0, E_1, ...`` with

i.   ``|E_i(iT)| <= 2D`` and ``E_i ⊆ E_{i-1} + C/2``;
ii.  ``E_i`` contains the biases of the good set ``G_i`` during ``I_i``;
iii. a processor non-faulty since ``jT`` is within
     ``E_i + max(WayOff / 2^{i-j} - C/2, 0)``.

This module *constructs* that certificate numerically for a concrete
parameterization and *checks* every step — the width recursion, the
containment chain, the recovery-allowance decay, and finally that the
certificate implies the Theorem 5 deviation bound
``Delta = 2D + 2*rho*T`` (the Appendix's ``D = 8e + 8pT + 2C``).

It is not a formal proof (the lemma itself is assumed, as the paper
defers its proof to the full version); it is a machine-checked
re-derivation of all the *arithmetic* between Lemma 7 and Theorem 5,
so any regression in the bound formulas of :mod:`repro.core.params`
is caught by comparing against this independent construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.envelope import Envelope
from repro.core.params import ProtocolParams
from repro.errors import MeasurementError


@dataclass(frozen=True)
class InductionStep:
    """One step ``I_i`` of the Claim 8 induction.

    Attributes:
        index: Interval number ``i``.
        envelope: The certificate envelope ``E_i`` (anchored at ``iT``).
        width: ``|E_i(iT)|``.
        width_ok: Claim 8(i) first half: ``width <= 2D``.
        containment_ok: Claim 8(i) second half:
            ``E_i ⊆ E_{i-1} + C/2`` (vacuous at ``i = 0``).
        recovery_allowance: Claim 8(iii)'s ``max(WayOff/2^i - C/2, 0)``
            for a processor non-faulty since time 0.
    """

    index: int
    envelope: Envelope
    width: float
    width_ok: bool
    containment_ok: bool
    recovery_allowance: float


@dataclass(frozen=True)
class InductionCertificate:
    """The full checked certificate for one parameterization.

    Attributes:
        steps: The inductive steps, in order.
        d_half_width: The Appendix's ``D``.
        implied_deviation: ``2D + 2*rho*T`` — what the certificate
            proves for Theorem 5(i).
        theorem_bound: The :mod:`repro.core.params` formula
            ``16e + 18pT + 4C``, for cross-checking.
        consistent: Whether the two derivations agree (they must:
            ``2D + 2pT = 16e + 16pT + 4C + 2pT``).
        recovery_steps_to_converge: Steps until the Claim 8(iii)
            allowance hits zero — the certificate's recovery time, in
            intervals.
    """

    steps: list[InductionStep]
    d_half_width: float
    implied_deviation: float
    theorem_bound: float
    consistent: bool
    recovery_steps_to_converge: int

    @property
    def all_ok(self) -> bool:
        """Every inductive step checked out."""
        return all(step.width_ok and step.containment_ok for step in self.steps)


def build_certificate(params: ProtocolParams, intervals: int = 40) -> InductionCertificate:
    """Construct and check the Claim 8 induction for ``params``.

    The envelope sequence is built from the Lemma 7 recursion applied
    at the width ceiling: starting from width ``2D``, one interval of
    drift and a Lemma 7(ii) contraction keep the next envelope within
    width ``2D`` again *provided* ``D >= 8e + 8pT + 2C`` — which is
    exactly why the Appendix sets ``D`` to that value.  Each ``E_i`` is
    anchored at ``iT`` and centered (WLOG, by translation) at 0.

    Args:
        params: The deployment parameters (must have ``K >= 5``).
        intervals: How many inductive steps to construct.

    Raises:
        MeasurementError: If the width recursion fails to close (i.e.
            the parameters violate the induction's premise).
    """
    bounds = params.bounds()
    t = params.t_interval
    d = bounds.d_half_width  # D = 8e + 8pT + 2C
    c = bounds.c
    rho = params.rho
    epsilon = params.epsilon

    steps: list[InductionStep] = []
    width = 2.0 * d
    previous: Envelope | None = None
    for i in range(intervals):
        envelope = Envelope(tau0=i * t, lo=-width / 2.0, hi=width / 2.0, rho=rho)
        width_ok = width <= 2.0 * d + 1e-12
        if previous is None:
            containment_ok = True
        else:
            containment_ok = previous.widened(c / 2.0).contains_envelope(
                envelope, slack=1e-12)
        allowance = max(params.way_off / (2.0 ** i) - c / 2.0, 0.0)
        steps.append(InductionStep(
            index=i, envelope=envelope, width=width, width_ok=width_ok,
            containment_ok=containment_ok, recovery_allowance=allowance,
        ))
        if not width_ok:
            raise MeasurementError(
                f"Claim 8 width recursion failed at step {i}: width "
                f"{width:.6g} > 2D = {2 * d:.6g}; parameters violate the "
                f"induction premise (is K >= 5?)"
            )
        previous = envelope
        # One interval forward: drift widens by 2pT, estimation adds
        # 2e, and the Lemma 7(ii) contraction multiplies by 7/8:
        #   width' = (7/8) * (width + 2pT)... the lemma statement gives
        # |E'| = 7D/4 + 2e for |E| = 2D evaluated at the interval end,
        # which already folds the drift in; we apply it at the ceiling.
        width = (7.0 / 8.0) * (width + 2.0 * rho * t) + 2.0 * epsilon
        # The next interval's envelope may also absorb the C/2 slack
        # of Claim 8(i).
        width = min(width + c / 2.0, 2.0 * d)

    implied = 2.0 * d + 2.0 * rho * t
    theorem = bounds.max_deviation
    # 2D + 2pT = 16e + 16pT + 4C + 2pT = 16e + 18pT + 4C: must match.
    consistent = math.isclose(implied, theorem, rel_tol=1e-12, abs_tol=1e-15)

    to_converge = next((s.index for s in steps if s.recovery_allowance == 0.0),
                       intervals)
    return InductionCertificate(
        steps=steps,
        d_half_width=d,
        implied_deviation=implied,
        theorem_bound=theorem,
        consistent=consistent,
        recovery_steps_to_converge=to_converge,
    )


def check_width_recursion_closes(params: ProtocolParams) -> bool:
    """Does one Lemma 7 interval map width ``2D`` back inside ``2D``?

    The fixed-point condition of the induction:
    ``(7/8)(2D + 2pT) + 2e + C/2 <= 2D``, equivalently
    ``D >= 7pT + 8e + 2C`` — implied by the Appendix's
    ``D = 8e + 8pT + 2C``.  Exposed separately so tests can probe the
    boundary (e.g. a deliberately undersized D must fail).
    """
    bounds = params.bounds()
    d = bounds.d_half_width
    mapped = (7.0 / 8.0) * (2.0 * d + 2.0 * params.rho * params.t_interval) \
        + 2.0 * params.epsilon + bounds.c / 2.0
    return mapped <= 2.0 * d + 1e-12


def minimum_viable_d(params: ProtocolParams) -> float:
    """The smallest ``D`` for which the width recursion closes.

    Solving ``(7/8)(2D + 2pT) + 2e + C/2 = 2D`` for ``D``:
    ``D = 7pT + 8e + 2C``.  The Appendix's ``D = 8e + 8pT + 2C`` has a
    little headroom, which the full proof spends elsewhere.
    """
    bounds = params.bounds()
    return 7.0 * params.rho * params.t_interval + 8.0 * params.epsilon \
        + 2.0 * bounds.c
