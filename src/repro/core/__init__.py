"""The paper's contribution: the Sync protocol and its analysis tools.

* :mod:`repro.core.params` — parameterization and Theorem 5 bounds.
* :mod:`repro.core.estimation` — clock estimation (Definition 4).
* :mod:`repro.core.convergence` — the Figure 1 convergence function and
  comparison baselines.
* :mod:`repro.core.sync` — the Sync protocol process.
* :mod:`repro.core.envelope` — Appendix A envelope calculus.
* :mod:`repro.core.analysis` — claim checkers (Lemma 7, Claim 8,
  Theorem 5) run against simulation output.
"""

from repro.core.analysis import (
    EnvelopeStep,
    PropertyCheck,
    RecoveryStep,
    Theorem5Verdict,
    envelope_trajectory,
    halving_holds,
    recovery_trajectory,
    section43_properties,
    theorem5_verdict,
    verify_bias_formulation,
)
from repro.core.convergence import (
    ClampedConvergence,
    ConvergenceFunction,
    CorrectionDecision,
    MeanConvergence,
    MidpointConvergence,
    PaperConvergence,
    TrimmedMeanConvergence,
    paper_order_statistics,
)
from repro.core.envelope import Envelope, average, envelope_of_biases, lemma7_shrunk_width
from repro.core.estimation import (
    ClockEstimate,
    EstimationSession,
    self_estimate,
    timeout_estimate,
)
from repro.core.params import ProtocolParams, Theorem5Bounds
from repro.core.sync import SyncProcess, SyncRecord

__all__ = [
    "ProtocolParams",
    "Theorem5Bounds",
    "ClockEstimate",
    "EstimationSession",
    "self_estimate",
    "timeout_estimate",
    "ConvergenceFunction",
    "CorrectionDecision",
    "PaperConvergence",
    "ClampedConvergence",
    "TrimmedMeanConvergence",
    "MeanConvergence",
    "MidpointConvergence",
    "paper_order_statistics",
    "SyncProcess",
    "SyncRecord",
    "Envelope",
    "average",
    "envelope_of_biases",
    "lemma7_shrunk_width",
    "envelope_trajectory",
    "EnvelopeStep",
    "recovery_trajectory",
    "RecoveryStep",
    "halving_holds",
    "theorem5_verdict",
    "Theorem5Verdict",
    "verify_bias_formulation",
    "section43_properties",
    "PropertyCheck",
]
