"""Convergence functions (Figure 1, lines 6-12).

A convergence function maps a processor's clock estimates to a signed
correction to apply to its own clock.  All corrections are expressed in
the *relative* frame of Figure 1: ``0`` is the processor's own clock,
an estimate ``d_q`` is "peer ``q`` is ``d_q`` ahead of me".

:class:`PaperConvergence` is the paper's contribution.  The remaining
functions are comparison baselines:

* :class:`ClampedConvergence` — any convergence function with the
  per-sync correction magnitude capped, isolating the Fetzer-Cristian
  [9] "minimal correction" design goal that the paper argues is
  incompatible with recovery (Section 1.1).
* :class:`TrimmedMeanConvergence` — discard the ``f`` lowest and ``f``
  highest estimates and average the rest; the classic fault-tolerant
  average of Lamport/Melliar-Smith-style algorithms.
* :class:`MeanConvergence` — unprotected averaging (NTP-flavoured);
  trivially hijacked by a Byzantine peer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.estimation import ClockEstimate
from repro.errors import ParameterError

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None


def kth_smallest(values: list[float], k: int) -> float:
    """The ``k+1``-st smallest value (0-indexed ``k``-th order statistic)."""
    if not (0 <= k < len(values)):
        raise ParameterError(f"order statistic {k} out of range for {len(values)} values")
    return sorted(values)[k]


def kth_largest(values: list[float], k: int) -> float:
    """The ``k+1``-st largest value."""
    if not (0 <= k < len(values)):
        raise ParameterError(f"order statistic {k} out of range for {len(values)} values")
    return sorted(values, reverse=True)[k]


def paper_order_statistics(estimates: list[ClockEstimate], f: int) -> tuple[float, float]:
    """Return Figure 1's ``(m, M)`` order statistics for ``estimates``.

    ``m`` is the ``f+1``-st smallest overestimate, ``M`` the ``f+1``-st
    largest underestimate.  Exposed separately so traces and analysis
    tools can record the statistics for any convergence function.
    """
    m = kth_smallest([e.overestimate for e in estimates], f)
    big_m = kth_largest([e.underestimate for e in estimates], f)
    return m, big_m


@dataclass(frozen=True)
class CorrectionDecision:
    """A convergence function's full verdict for one Sync execution.

    Produced by :meth:`ConvergenceFunction.decide` so that the trace
    record of *which Figure 1 branch fired* comes from the same
    computation as the applied correction — the two cannot silently
    diverge.

    Attributes:
        correction: Signed amount to add to the clock's ``adj``.
        m: Figure 1's low statistic (``f+1``-st smallest overestimate);
            ``nan`` when the function has no applicable order statistics.
        big_m: Figure 1's high statistic (``f+1``-st largest
            underestimate); ``nan`` when not applicable.
        own_discarded: True when the WayOff branch fired and the
            processor ignored its own clock.  Always False for
            baselines that have no such branch.
    """

    correction: float
    m: float
    big_m: float
    own_discarded: bool


def decide_arrays(overestimates: Sequence[float], underestimates: Sequence[float],
                  f: int, way_off: float) -> CorrectionDecision:
    """Figure 1 lines 6-12 on raw overestimate/underestimate views.

    The scalar decision kernel shared by :class:`PaperConvergence` (which
    builds the views from :class:`ClockEstimate` objects) and the batch
    engine in :mod:`repro.sim.vector` (which keeps per-peer estimates in
    flat struct-of-arrays state and passes slices directly).  Keeping one
    kernel guarantees the backends cannot diverge.

    Args:
        overestimates: One ``d_q + a_q`` per estimate (``+inf`` for a
            timed-out peer).
        underestimates: One ``d_q - a_q`` per estimate (``-inf`` for a
            timed-out peer), in any order — only the multiset matters.
        f: Fault bound used by order-statistic selection.
        way_off: The Figure 1 credibility threshold.
    """
    if len(overestimates) < 2 * f + 1:
        raise ParameterError(
            f"need at least 2f+1={2 * f + 1} estimates to tolerate f={f}; "
            f"got {len(overestimates)}"
        )
    m = kth_smallest(list(overestimates), f)
    big_m = kth_largest(list(underestimates), f)
    if not (math.isfinite(m) and math.isfinite(big_m)):
        # More than f peers timed out (or a NaN slipped past the
        # estimation layer's sanitizer — NaN fails isfinite too);
        # no safe correction exists.  Defense in depth behind the
        # message validation in EstimationSession.on_pong.
        return CorrectionDecision(0.0, m, big_m, own_discarded=False)
    if m >= -way_off and big_m <= way_off:
        # Own clock credible: extend [m, M] to include 0 and average.
        return CorrectionDecision((min(m, 0.0) + max(big_m, 0.0)) / 2.0,
                                  m, big_m, own_discarded=False)
    # WayOff branch: the own clock is discarded outright.
    return CorrectionDecision((m + big_m) / 2.0, m, big_m, own_discarded=True)


def decide_columns(over_rows: Sequence[Sequence[float]],
                   under_rows: Sequence[Sequence[float]],
                   f: int, way_off: float,
                   ) -> tuple[list[float], list[float], list[float], list[bool]]:
    """Batched Figure 1 decisions over ``(batch, k)`` estimate rows.

    Evaluates every row's (f+1)-st order statistics and branch with
    masked array updates on the numpy fast path (sort along the estimate
    axis, branch masks, ``where``-selected corrections) and row-wise
    :func:`decide_arrays` on the pure-python fallback.  Every operation
    used — sort selection, comparison, ``min``/``max`` against 0,
    addition and halving — is exact in IEEE-754, so both paths return
    byte-identical floats.

    Used by the batch engine's cross-run decision verification and the
    decision micro-benchmark; within one run the decisions stay
    sequential (each Sync round reads clocks already corrected by the
    previous round), so the batch axis here is across runs/rounds, never
    within one.

    Returns:
        ``(corrections, ms, big_ms, own_discarded)`` — one entry per row.
    """
    if not over_rows:
        return [], [], [], []
    k = len(over_rows[0])
    if any(len(row) != k for row in over_rows) or \
            any(len(row) != k for row in under_rows):
        raise ParameterError("decide_columns requires rectangular estimate rows")
    if k < 2 * f + 1:
        raise ParameterError(
            f"need at least 2f+1={2 * f + 1} estimates to tolerate f={f}; got {k}"
        )
    if _np is not None:
        from repro.metrics.columns import numpy_active
        use_numpy = numpy_active()
    else:
        use_numpy = False
    if use_numpy:
        over = _np.sort(_np.asarray(over_rows, dtype=_np.float64), axis=1)
        under = _np.sort(_np.asarray(under_rows, dtype=_np.float64), axis=1)
        m = over[:, f]
        big_m = under[:, k - 1 - f]
        finite = _np.isfinite(m) & _np.isfinite(big_m)
        credible = (m >= -way_off) & (big_m <= way_off)
        averaged = (_np.minimum(m, 0.0) + _np.maximum(big_m, 0.0)) / 2.0
        jumped = (m + big_m) / 2.0
        corrections = _np.where(finite, _np.where(credible, averaged, jumped), 0.0)
        own_discarded = finite & ~credible
        return (corrections.tolist(), m.tolist(), big_m.tolist(),
                own_discarded.tolist())
    corrections, ms, big_ms, discarded = [], [], [], []
    for over_row, under_row in zip(over_rows, under_rows):
        decision = decide_arrays(over_row, under_row, f, way_off)
        corrections.append(decision.correction)
        ms.append(decision.m)
        big_ms.append(decision.big_m)
        discarded.append(decision.own_discarded)
    return corrections, ms, big_ms, discarded


class ConvergenceFunction:
    """Maps estimates to a clock correction (relative frame)."""

    name = "abstract"

    def decide(self, estimates: list[ClockEstimate], f: int, way_off: float
               ) -> CorrectionDecision:
        """Compute the correction together with its trace metadata.

        The default wraps :meth:`correction` and reports the Figure 1
        order statistics for the trace (``nan`` when they do not exist
        for this estimate set); functions with a WayOff branch override
        this to report the branch actually taken.
        """
        correction = self.correction(estimates, f, way_off)
        try:
            m, big_m = paper_order_statistics(estimates, f)
        except ParameterError:
            m = big_m = math.nan
        return CorrectionDecision(correction=correction, m=m, big_m=big_m,
                                  own_discarded=False)

    def correction(self, estimates: list[ClockEstimate], f: int, way_off: float) -> float:
        """Compute the correction to add to the local clock.

        Args:
            estimates: One per consulted processor (self included when
                the protocol is configured that way).
            f: Fault bound used by order-statistic selection.
            way_off: The Figure 1 threshold (ignored by baselines that
                have no such concept).

        Returns:
            A finite correction, or ``0.0`` when the estimates are too
            degenerate to act on (e.g. more than ``f`` timeouts leave the
            order statistics infinite).
        """
        raise NotImplementedError


class PaperConvergence(ConvergenceFunction):
    """The Sync convergence function of Figure 1.

    Per peer, form the overestimate ``d_q + a_q`` and underestimate
    ``d_q - a_q``.  Let ``m`` be the ``f+1``-st smallest overestimate
    and ``M`` the ``f+1``-st largest underestimate.  With at most ``f``
    faulty peers, the interval ``[m, M]`` is guaranteed to intersect the
    range of good clocks.  Then:

    * if ``m >= -WayOff`` and ``M <= WayOff`` (own clock credible), move
      to ``(min(m, 0) + max(M, 0)) / 2`` — i.e. average the interval
      after extending it to include our own clock at ``0``;
    * otherwise our own clock is hopeless: jump to ``(m + M) / 2``.

    The *unconditional* halving toward ``[m, M]`` in the second branch
    is the design choice that makes recovery fast (Section 1.1's
    contrast with [9]).
    """

    name = "paper"

    def decide(self, estimates: list[ClockEstimate], f: int, way_off: float
               ) -> CorrectionDecision:
        """Figure 1 lines 6-12, reporting the branch actually taken."""
        return decide_arrays([e.overestimate for e in estimates],
                             [e.underestimate for e in estimates],
                             f, way_off)

    def correction(self, estimates: list[ClockEstimate], f: int, way_off: float) -> float:
        return self.decide(estimates, f, way_off).correction


class ClampedConvergence(ConvergenceFunction):
    """Wrap another convergence function, capping |correction|.

    Models the Fetzer-Cristian [9] goal of minimizing the per-sync clock
    change.  A recovering processor whose clock is ``X`` away needs
    ``X / max_step`` syncs to return — and if the good clocks drift away
    faster than ``max_step`` per sync allows it to catch up, it *never*
    recovers.  Experiment E5 demonstrates both regimes.
    """

    name = "clamped"

    def __init__(self, inner: ConvergenceFunction, max_step: float) -> None:
        if max_step <= 0:
            raise ParameterError(f"max_step must be positive, got {max_step}")
        self.inner = inner
        self.max_step = float(max_step)
        self.name = f"clamped({inner.name}, {max_step:g})"

    def decide(self, estimates: list[ClockEstimate], f: int, way_off: float
               ) -> CorrectionDecision:
        """Clamp the inner correction, preserving its branch report."""
        inner = self.inner.decide(estimates, f, way_off)
        clamped = max(-self.max_step, min(self.max_step, inner.correction))
        return CorrectionDecision(clamped, inner.m, inner.big_m, inner.own_discarded)

    def correction(self, estimates: list[ClockEstimate], f: int, way_off: float) -> float:
        return self.decide(estimates, f, way_off).correction


class TrimmedMeanConvergence(ConvergenceFunction):
    """Discard the ``f`` lowest and ``f`` highest distances, average the rest.

    Timeout estimates (``a = inf``) are pushed to the extremes by
    sorting on the midpoint ``d``; with at most ``f`` of them they are
    trimmed away.  Unlike :class:`PaperConvergence` this function has no
    notion of discarding the *own* clock, so a way-off processor only
    converges at the averaged rate.
    """

    name = "trimmed-mean"

    def correction(self, estimates: list[ClockEstimate], f: int, way_off: float) -> float:
        if len(estimates) <= 2 * f:
            raise ParameterError(
                f"need more than 2f={2 * f} estimates to trim; got {len(estimates)}"
            )
        distances = sorted(e.distance if not e.timed_out else math.inf for e in estimates)
        kept = distances[f: len(distances) - f] if f > 0 else distances
        finite = [d for d in kept if math.isfinite(d)]
        if not finite:
            return 0.0
        return sum(finite) / len(finite)


class MeanConvergence(ConvergenceFunction):
    """Plain average of all finite distance estimates — no protection.

    The NTP-flavoured baseline: a single Byzantine peer reporting an
    enormous offset drags the correction arbitrarily.  Exists to show
    what the order-statistic selection is buying.
    """

    name = "mean"

    def correction(self, estimates: list[ClockEstimate], f: int, way_off: float) -> float:
        finite = [e.distance for e in estimates if not e.timed_out]
        if not finite:
            return 0.0
        return sum(finite) / len(finite)


class MidpointConvergence(ConvergenceFunction):
    """Fault-tolerant midpoint: mean of the ``f+1``-st smallest and largest
    distances (the Welch-Lynch style reduction, without the paper's
    own-clock handling or error-bound widening)."""

    name = "ft-midpoint"

    def correction(self, estimates: list[ClockEstimate], f: int, way_off: float) -> float:
        if len(estimates) < 2 * f + 1:
            raise ParameterError(
                f"need at least 2f+1={2 * f + 1} estimates; got {len(estimates)}"
            )
        # Timeouts behave like the paper's (0, inf) estimates: they are
        # pushed to +inf on the low-side statistic and -inf on the
        # high-side one, so up to f of them are discarded by selection.
        low = kth_smallest([math.inf if e.timed_out else e.distance for e in estimates], f)
        high = kth_largest([-math.inf if e.timed_out else e.distance for e in estimates], f)
        if not (math.isfinite(low) and math.isfinite(high)):
            return 0.0
        return (low + high) / 2.0


class EgocentricMeanConvergence(ConvergenceFunction):
    """Interactive convergence (CNV) of Lamport and Melliar-Smith [19].

    The classic fault-tolerant average: read every clock, replace any
    reading farther than ``threshold`` from the own clock by the own
    clock's value (0 in the relative frame), and average everything.
    With ``n >= 3f+1`` and a threshold at the synchronization bound,
    the f Byzantine readings move the mean by at most
    ``f * threshold / n`` — bounded, but looser than the order-statistic
    selection, and with no own-clock-discard rule it recovers a way-off
    processor only at the averaged rate (like the trimmed mean).

    Args:
        threshold: The egocentric plausibility radius; readings beyond
            it are replaced by the own clock.  Defaults to ``way_off``
            at call time when constructed with ``None``.
    """

    name = "egocentric-mean"

    def __init__(self, threshold: float | None = None) -> None:
        self.threshold = threshold

    def correction(self, estimates: list[ClockEstimate], f: int, way_off: float) -> float:
        if len(estimates) < 3 * f + 1:
            raise ParameterError(
                f"interactive convergence needs n >= 3f+1={3 * f + 1} "
                f"readings; got {len(estimates)}"
            )
        radius = self.threshold if self.threshold is not None else way_off
        replaced = [
            e.distance if (not e.timed_out and abs(e.distance) <= radius) else 0.0
            for e in estimates
        ]
        return sum(replaced) / len(replaced)
