"""Envelope calculus of Appendix A.

The proof of Theorem 5 works in the ``(tau, beta)``-plane: real time on
one axis, clock bias ``B_p(tau) = C_p(tau) - tau`` on the other.  An
*envelope* (Definition 6) is the region a drift-bounded bias can reach
from a starting interval::

    Env{tau0, [a, b]} = { (tau, beta) : tau >= tau0,
                          a - rho*(tau - tau0) <= beta <= b + rho*(tau - tau0) }

This module implements the envelope operations the proof uses —
evaluation at a time, widening by a constant (``E + c``), averaging of
two envelopes, and containment — plus the membership predicates ("bias
in / not above / not below E during an interval").  The analysis tools
(:mod:`repro.core.analysis`) fit envelopes to simulation traces to check
Lemma 7 empirically, and the property-based tests exercise the algebra
(e.g. that averaging two biases stays in the averaged envelope).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MeasurementError


@dataclass(frozen=True)
class Envelope:
    """``Env{tau0, [lo, hi]}`` with drift slope ``rho`` (Definition 6).

    Attributes:
        tau0: Anchor real time.
        lo: Lower bias bound at ``tau0`` (may be ``-inf``).
        hi: Upper bias bound at ``tau0`` (may be ``+inf``).
        rho: Drift rate at which the region widens after ``tau0``.
    """

    tau0: float
    lo: float
    hi: float
    rho: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise MeasurementError(f"envelope requires lo <= hi, got [{self.lo}, {self.hi}]")
        if self.rho < 0:
            raise MeasurementError(f"envelope rho must be non-negative, got {self.rho}")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def interval_at(self, tau: float) -> tuple[float, float]:
        """``E(tau)``: the bias interval at real time ``tau >= tau0``."""
        if tau < self.tau0:
            raise MeasurementError(
                f"envelope evaluated at tau={tau} before its anchor {self.tau0}"
            )
        spread = self.rho * (tau - self.tau0)
        return (self.lo - spread, self.hi + spread)

    def width_at(self, tau: float) -> float:
        """``|E(tau)|``: size of the bias interval at ``tau``."""
        low, high = self.interval_at(tau)
        return high - low

    def contains(self, tau: float, beta: float, slack: float = 0.0) -> bool:
        """Whether bias ``beta`` lies in ``E(tau)`` (within ``slack``)."""
        low, high = self.interval_at(tau)
        return low - slack <= beta <= high + slack

    def distance_above(self, tau: float, beta: float) -> float:
        """How far ``beta`` is above ``E(tau)`` (0 if not above)."""
        _, high = self.interval_at(tau)
        return max(0.0, beta - high)

    def distance_below(self, tau: float, beta: float) -> float:
        """How far ``beta`` is below ``E(tau)`` (0 if not below)."""
        low, _ = self.interval_at(tau)
        return max(0.0, low - beta)

    def distance_outside(self, tau: float, beta: float) -> float:
        """Distance from ``beta`` to ``E(tau)`` (0 inside)."""
        return max(self.distance_above(tau, beta), self.distance_below(tau, beta))

    # ------------------------------------------------------------------
    # Algebra (Appendix A notations)
    # ------------------------------------------------------------------

    def widened(self, c: float) -> "Envelope":
        """``E + c``: extend both sides by a non-negative constant."""
        if c < 0:
            raise MeasurementError(f"widening constant must be non-negative, got {c}")
        return Envelope(self.tau0, self.lo - c, self.hi + c, self.rho)

    def rebased(self, tau: float) -> "Envelope":
        """The same region re-anchored at a later time ``tau``."""
        low, high = self.interval_at(tau)
        return Envelope(tau, low, high, self.rho)

    def contains_envelope(self, other: "Envelope", slack: float = 0.0) -> bool:
        """Whether ``other ⊆ self`` for all ``tau >= other.tau0``.

        With equal ``rho`` this reduces to interval containment at
        ``max(tau0, other.tau0)``.
        """
        if other.rho > self.rho:
            return False
        anchor = max(self.tau0, other.tau0)
        s_low, s_high = self.interval_at(anchor)
        o_low, o_high = other.interval_at(anchor)
        return s_low - slack <= o_low and o_high <= s_high + slack


def average(e1: Envelope, e2: Envelope) -> Envelope:
    """``avg(E, E')`` of Appendix A: endpoint-wise mean of two envelopes.

    If at some time one bias is in ``E`` and another in ``E'``, their
    average is in ``avg(E, E')`` — the lemma the convergence analysis
    leans on.  Both envelopes must share anchor and drift rate.
    """
    if e1.tau0 != e2.tau0 or e1.rho != e2.rho:
        raise MeasurementError(
            "averaged envelopes must share anchor and rho; got "
            f"(tau0={e1.tau0}, rho={e1.rho}) and (tau0={e2.tau0}, rho={e2.rho})"
        )
    return Envelope(e1.tau0, (e1.lo + e2.lo) / 2.0, (e1.hi + e2.hi) / 2.0, e1.rho)


def envelope_of_biases(tau0: float, biases: list[float], rho: float) -> Envelope:
    """Smallest envelope anchored at ``tau0`` containing all ``biases``."""
    if not biases:
        raise MeasurementError("cannot build an envelope from zero biases")
    return Envelope(tau0, min(biases), max(biases), rho)


def lemma7_shrunk_width(d_half_width: float, epsilon: float) -> float:
    """Lemma 7(ii): an envelope of width ``2D`` shrinks to ``7D/4 + 2e``.

    Args:
        d_half_width: The ``D`` of Lemma 7 (half the starting width).
        epsilon: Reading-error bound.

    Returns:
        The guaranteed end-of-interval width ``7D/4 + 2*epsilon``.
    """
    return 7.0 * d_half_width / 4.0 + 2.0 * epsilon
