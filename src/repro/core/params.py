"""Protocol parameters and the Theorem 5 bound calculator.

Section 3.2 of the paper constrains the protocol's three tunables:

* ``SyncInt`` — local time between Sync executions, with
  ``SyncInt >= 2 * MaxWait``;
* ``MaxWait`` — estimation timeout, ``MaxWait >= 2 * delta`` (we default
  to ``2 * delta * (1 + rho)`` so the timeout spans ``2 * delta`` of
  *real* time even on a fast local clock);
* ``WayOff`` — the "my clock is hopeless" threshold,
  ``WayOff >= Delta + epsilon`` where ``Delta`` is the target maximum
  deviation; Appendix A pins it to ``WayOff = 16e + 18pT + Delta``.

Section 4 then derives (Theorem 5), with
``T = (1 + rho) * SyncInt + 2 * MaxWait`` and ``K = floor(PI / T) >= 5``
and ``C = (17 * epsilon + 18 * rho * T) / (2**K - 3)``:

* maximum deviation ``Delta = 16 * epsilon + 18 * rho * T + 4 * C``;
* logical drift ``rho~ = rho + C / (2 * T)``;
* discontinuity ``alpha = epsilon + C / 2``.

:class:`ProtocolParams` validates the constraints eagerly and exposes
the bounds through :meth:`ProtocolParams.bounds`.  Section 3.3 notes the
protocol itself never *uses* ``delta``, ``rho``, or ``epsilon`` — they
enter only through the derived tunables, which may overestimate them;
experiment E9 measures the cost of such overestimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.errors import ConfigurationError, ParameterError


@dataclass(frozen=True)
class Theorem5Bounds:
    """The guarantees of Theorem 5 for a concrete parameter choice.

    Attributes:
        t_interval: The analysis interval ``T``.
        k: ``K = floor(PI / T)``, the number of analysis intervals per
            adversary period.
        c: The convergence residue ``C = (17e + 18pT) / (2**K - 3)``.
        max_deviation: Theorem 5(i) bound on ``|C_p - C_q|`` for good
            ``p, q``.
        logical_drift: Theorem 5(ii) drift bound ``rho~``.
        discontinuity: Theorem 5(ii) discontinuity bound ``alpha``.
        d_half_width: Appendix A's ``D = 8e + 8pT + 2C``; the inductive
            envelopes have width ``2D`` and ``Delta = 2D + 2pT``.
        way_off_required: Appendix A's prescription
            ``WayOff = 16e + 18pT + Delta``.
        recovery_intervals: Number of ``T``-intervals within which a
            released processor provably rejoins: per Claim 8(iii) its
            residual distance is ``WayOff / 2**j``, which drops below
            ``C/2`` after ``ceil(log2(2 * WayOff / C))`` intervals.
    """

    t_interval: float
    k: int
    c: float
    max_deviation: float
    logical_drift: float
    discontinuity: float
    d_half_width: float
    way_off_required: float
    recovery_intervals: int


@dataclass(frozen=True)
class ProtocolParams:
    """Complete parameterization of a Sync deployment.

    Attributes:
        n: Number of processors; must satisfy ``n >= 3f + 1``.
        f: Maximum processors faulty within any window of length ``pi``.
        delta: Message delivery bound (real time).
        rho: Hardware drift bound (eq. 2).
        pi: The adversary's time period ``PI`` (Definition 2).
        sync_interval: ``SyncInt`` — local time between Syncs.
        max_wait: ``MaxWait`` — estimation timeout (local time).
        way_off: ``WayOff`` — threshold for discarding own clock.
        epsilon: Reading-error bound of the estimation procedure
            (Definition 4); for one-shot ping/pong this is
            ``delta * (1 + rho)``.
        include_self: Whether a processor estimates its own clock with
            ``(d, a) = (0, 0)`` — the literal reading of Figure 1's loop
            over ``q in {1..n}``.
        strict: Validate the Section 3.2 constraints at construction.
    """

    n: int
    f: int
    delta: float
    rho: float
    pi: float
    sync_interval: float
    max_wait: float
    way_off: float
    epsilon: float = field(default=-1.0)
    include_self: bool = True
    strict: bool = True

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            object.__setattr__(self, "epsilon", self.delta * (1.0 + self.rho))
        if self.strict:
            self.validate()

    # ------------------------------------------------------------------
    # Validation (Section 3.2 constraints)
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check every constraint the analysis relies on.

        Raises:
            ParameterError: Describing the first violated constraint.
        """
        if self.f < 1:
            raise ParameterError(f"f must be at least 1, got f={self.f}")
        if self.n < 3 * self.f + 1:
            raise ParameterError(
                f"need n >= 3f + 1 for f-limited Byzantine tolerance; "
                f"got n={self.n}, f={self.f} (minimum n={3 * self.f + 1})"
            )
        if self.delta <= 0:
            raise ParameterError(f"delta must be positive, got {self.delta}")
        if self.rho < 0:
            raise ParameterError(f"rho must be non-negative, got {self.rho}")
        if self.pi <= 0:
            raise ParameterError(f"pi must be positive, got {self.pi}")
        if self.max_wait < 2.0 * self.delta:
            raise ParameterError(
                f"MaxWait must be at least 2*delta={2 * self.delta}; got {self.max_wait}"
            )
        if self.sync_interval < 2.0 * self.max_wait:
            raise ParameterError(
                f"SyncInt must be at least 2*MaxWait={2 * self.max_wait}; "
                f"got {self.sync_interval}"
            )
        if self.k < 5:
            raise ParameterError(
                f"Theorem 5 requires K = floor(PI/T) >= 5; got K={self.k} "
                f"(PI={self.pi}, T={self.t_interval:.6g}). Increase PI or "
                f"decrease SyncInt."
            )
        bounds = self.bounds()
        if self.way_off < bounds.max_deviation + self.epsilon:
            raise ParameterError(
                f"WayOff must be at least Delta + epsilon = "
                f"{bounds.max_deviation + self.epsilon:.6g}; got {self.way_off}"
            )

    # ------------------------------------------------------------------
    # Derived quantities (Section 4)
    # ------------------------------------------------------------------

    @property
    def t_interval(self) -> float:
        """The analysis interval ``T = (1+rho)*SyncInt + 2*MaxWait``.

        Any non-faulty processor completes at least one and at most two
        full Syncs within any window of length ``T``.
        """
        return (1.0 + self.rho) * self.sync_interval + 2.0 * self.max_wait

    @property
    def k(self) -> int:
        """``K = floor(PI / T)``: analysis intervals per adversary period."""
        return int(math.floor(self.pi / self.t_interval))

    def bounds(self) -> Theorem5Bounds:
        """Evaluate the Theorem 5 / Appendix A formulas for these params.

        The formulas are evaluated even when ``K < 5`` (the guarantee is
        then vacuous but the numbers remain useful for sweeps); callers
        that need the guarantee should check :attr:`k` or construct with
        ``strict=True``.
        """
        t = self.t_interval
        k = self.k
        base = 17.0 * self.epsilon + 18.0 * self.rho * t
        denominator = 2.0 ** k - 3.0
        c = base / denominator if denominator > 0 else math.inf
        max_deviation = 16.0 * self.epsilon + 18.0 * self.rho * t + 4.0 * c
        way_off_required = 16.0 * self.epsilon + 18.0 * self.rho * t + max_deviation
        if c > 0 and math.isfinite(c) and math.isfinite(self.way_off):
            recovery_intervals = max(1, math.ceil(math.log2(max(2.0 * self.way_off / c, 2.0))))
        else:
            recovery_intervals = 0
        return Theorem5Bounds(
            t_interval=t,
            k=k,
            c=c,
            max_deviation=max_deviation,
            logical_drift=self.rho + c / (2.0 * t),
            discontinuity=self.epsilon + c / 2.0,
            d_half_width=8.0 * self.epsilon + 8.0 * self.rho * t + 2.0 * c,
            way_off_required=way_off_required,
            recovery_intervals=recovery_intervals,
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def derive(cls, n: int, f: int, delta: float, rho: float, pi: float,
               target_k: int = 20, include_self: bool = True) -> "ProtocolParams":
        """Derive a full parameterization from the network model alone.

        Picks ``MaxWait = 2*delta*(1+rho)``, chooses ``SyncInt`` so that
        ``K ~ target_k`` (the Section 4.1 remark suggests ``T = PI/20``
        gives near-optimal accuracy), and sets ``WayOff`` to the
        Appendix A prescription.

        Raises:
            ParameterError: If ``pi`` is too short to fit ``K >= 5``
                Sync intervals, or any base constraint fails.
        """
        max_wait = 2.0 * delta * (1.0 + rho)
        target_t = pi / float(max(target_k, 5))
        sync_interval = (target_t - 2.0 * max_wait) / (1.0 + rho)
        sync_interval = max(sync_interval, 2.0 * max_wait)
        draft = cls(
            n=n, f=f, delta=delta, rho=rho, pi=pi,
            sync_interval=sync_interval, max_wait=max_wait,
            way_off=math.inf, include_self=include_self, strict=False,
        )
        if draft.k < 5:
            raise ParameterError(
                f"cannot fit K >= 5 Sync intervals of T >= "
                f"{draft.t_interval:.6g} into PI={pi}; increase PI or "
                f"decrease delta"
            )
        way_off = draft.bounds().way_off_required
        return replace(draft, way_off=way_off, strict=True)

    @classmethod
    def from_config(cls, spec: dict[str, Any]) -> "ProtocolParams":
        """Build params from the JSON ``params`` config section.

        Two forms are accepted, keyed on whether ``sync_interval`` is
        present:

        * the *explicit* form — every tunable spelled out (the output of
          :meth:`to_config`); accepted keys are exactly the dataclass
          fields, with ``n, f, delta, rho, pi, sync_interval, max_wait,
          way_off`` required;
        * the *derived* form — ``n, f, delta, rho, pi`` plus optional
          ``target_k`` (default 10) and ``include_self``, handed to
          :meth:`derive`.

        Raises:
            ConfigurationError: Naming any unknown, missing, or
                mixed-in keys instead of letting ``TypeError`` escape
                from the constructor.
        """
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"params config must be an object, got {type(spec).__name__}")
        required = {"n", "f", "delta", "rho", "pi"}
        missing = required - spec.keys()
        if missing:
            raise ConfigurationError(f"params config missing keys: {sorted(missing)}")
        if "sync_interval" in spec:
            known = {f.name for f in fields(cls)}
            unknown = spec.keys() - known
            if unknown:
                raise ConfigurationError(
                    f"unknown keys {sorted(unknown)} in explicit params config; "
                    f"known: {sorted(known)}")
            missing_explicit = {"max_wait", "way_off"} - spec.keys()
            if missing_explicit:
                raise ConfigurationError(
                    f"explicit params config (sync_interval present) also "
                    f"requires keys: {sorted(missing_explicit)}")
            return cls(**spec)
        known = required | {"target_k", "include_self"}
        unknown = spec.keys() - known
        if unknown:
            raise ConfigurationError(
                f"unknown keys {sorted(unknown)} in derived params config; "
                f"known: {sorted(known)} (add 'sync_interval' for the "
                f"explicit form)")
        return cls.derive(
            n=int(spec["n"]), f=int(spec["f"]), delta=float(spec["delta"]),
            rho=float(spec["rho"]), pi=float(spec["pi"]),
            target_k=int(spec.get("target_k", 10)),
            include_self=bool(spec.get("include_self", True)),
        )

    def to_config(self) -> dict[str, Any]:
        """The lossless explicit config form (round-trips through
        :meth:`from_config`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def scaled(self, *, delta_factor: float = 1.0, rho_factor: float = 1.0) -> "ProtocolParams":
        """Return params whose tunables assume inflated ``delta``/``rho``.

        Models the Section 3.3 "known values" scenario: the deployer
        only knows overestimates of the physical constants.  The derived
        ``MaxWait``/``SyncInt``/``WayOff`` grow accordingly while the
        *actual* network keeps the true ``delta`` and ``rho``.
        """
        inflated = ProtocolParams.derive(
            n=self.n, f=self.f,
            delta=self.delta * delta_factor,
            rho=self.rho * rho_factor,
            pi=self.pi, include_self=self.include_self,
        )
        return replace(
            inflated, delta=self.delta, rho=self.rho,
            epsilon=self.delta * delta_factor * (1.0 + self.rho * rho_factor),
            strict=False,
        )
