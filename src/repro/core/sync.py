"""The Sync protocol (Figure 1) as a runtime-agnostic process.

Each :class:`SyncProcess`:

* answers every :class:`~repro.runtime.messages.Ping` immediately with
  its *current* clock value — the "no rounds" property of Section 3.3;
* every ``SyncInt`` units of local time runs one Sync: pings all peers
  in parallel, waits at most ``MaxWait`` local time (finishing early if
  everyone answered), and applies the convergence function's correction
  to its adjustment variable;
* on recovery from a break-in, restarts its Sync alarm (the paper's
  note that the alarm "must be recovered after a break-in") while
  keeping whatever clock value the adversary left — re-synchronizing
  that value is the protocol's own job.

The protocol is written purely against
:class:`~repro.runtime.api.NodeRuntime`, so the same class runs under
the discrete-event simulator and under real asyncio timers
(:mod:`repro.rt`) without modification.

The convergence function is pluggable (default
:class:`~repro.core.convergence.PaperConvergence`), which is how the
baseline protocols in :mod:`repro.protocols` reuse this machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.convergence import (
    ConvergenceFunction,
    PaperConvergence,
)
from repro.core.estimation import ClockEstimate, EstimationSession, self_estimate
from repro.core.params import ProtocolParams
from repro.runtime.messages import Message, Ping, Pong
from repro.runtime.process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.api import NodeRuntime


@dataclass(frozen=True)
class SyncRecord:
    """Trace record of one completed Sync execution.

    Attributes:
        node_id: The processor that synced.
        round_no: Its local Sync counter.
        real_time: Runtime real time at completion.
        local_before: Clock value just before the correction.
        correction: Signed amount added to ``adj``.
        m: Figure 1's low statistic (``f+1``-st smallest overestimate).
        big_m: Figure 1's high statistic (``f+1``-st largest underestimate).
        own_discarded: True when the WayOff branch fired and the
            processor ignored its own clock, as reported by the
            convergence function itself (the same computation that
            produced ``correction``).
        replies: Number of peers that answered before the deadline.
    """

    node_id: int
    round_no: int
    real_time: float
    local_before: float
    correction: float
    m: float
    big_m: float
    own_discarded: bool
    replies: int


class SyncProcess(Process):
    """A processor running the paper's Sync protocol.

    Args:
        runtime: The execution surface this processor runs on (timers,
            messaging, logical clock).
        params: Protocol parameterization (Section 3.2).
        convergence: Convergence function; defaults to the paper's.
        pings_per_peer: Pings per peer per Sync (Section 3.1
            optimization; 1 reproduces the paper's basic procedure).
        start_phase: Local-time delay before the first Sync, used to
            de-synchronize the processors' Sync schedules (the paper
            makes no assumption about relative Sync times).

    Attributes:
        sync_records: Completed-Sync trace (grows over the run).
        sync_listeners: Callbacks invoked with each new record.
    """

    def __init__(self, runtime: "NodeRuntime", params: ProtocolParams,
                 convergence: ConvergenceFunction | None = None,
                 pings_per_peer: int = 1, start_phase: float = 0.0) -> None:
        super().__init__(runtime)
        self.params = params
        self.convergence = convergence if convergence is not None else PaperConvergence()
        self.pings_per_peer = pings_per_peer
        self.start_phase = float(start_phase)
        self.sync_records: list[SyncRecord] = []
        self.sync_listeners: list[Callable[[SyncRecord], None]] = []
        self._round = 0
        self._session: EstimationSession | None = None
        self._deadline = None

    # ------------------------------------------------------------------
    # Protocol lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the first Sync alarm (also called on recovery)."""
        self._session = None
        self._deadline = None
        first_delay = self.start_phase if self._round == 0 else self.params.sync_interval
        self.set_local_timer(first_delay, self._begin_sync, tag="sync-alarm")

    def _begin_sync(self) -> None:
        """Figure 1 line 1: start one execution of sync()."""
        self._round += 1
        if self.obs is not None:
            self.obs.publish("sync.begin", node=self.node_id,
                             round=self._round, local=self.local_now())
        peers = self.neighbors()
        self._session = EstimationSession(self, peers, self.pings_per_peer)
        self._session.begin(self._round)
        self._deadline = self.set_local_timer(
            self.params.max_wait, self._complete_sync, tag="sync-deadline"
        )

    def on_message(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Ping):
            # Always answer with the live clock value: no rounds (3.3).
            self.send(message.sender, Pong(nonce=payload.nonce, clock_value=self.local_now()))
            if self.obs is not None:
                self.obs.publish("sync.reply", node=self.node_id,
                                 peer=message.sender)
        elif isinstance(payload, Pong):
            if self._session is not None and self._session.on_pong(message):
                if self._session.complete:
                    # Everyone answered; no reason to sit out MaxWait.
                    if self._deadline is not None:
                        self._deadline.cancel()
                    self._complete_sync()

    def _complete_sync(self) -> None:
        """Figure 1 lines 6-12: select order statistics, adjust the clock."""
        session = self._session
        if session is None:
            return
        self._session = None
        self._deadline = None

        estimates: list[ClockEstimate] = list(session.finish().values())
        replies = sum(1 for e in estimates if not e.timed_out)
        if self.params.include_self:
            estimates.append(self_estimate(self.node_id))

        local_before = self.local_now()
        # One call yields both the correction and the branch metadata, so
        # the trace record cannot diverge from the applied correction.
        decision = self.convergence.decide(
            estimates, self.params.f, self.params.way_off
        )
        self.adjust_clock(decision.correction)

        record = SyncRecord(
            node_id=self.node_id,
            round_no=self._round,
            real_time=self.real_now(),
            local_before=local_before,
            correction=decision.correction,
            m=decision.m,
            big_m=decision.big_m,
            own_discarded=decision.own_discarded,
            replies=replies,
        )
        self.sync_records.append(record)
        if self.obs is not None:
            self.obs.publish("sync.complete", node=self.node_id,
                             round=self._round, correction=decision.correction,
                             m=decision.m, big_m=decision.big_m,
                             own_discarded=decision.own_discarded,
                             replies=replies, local_before=local_before)
        for listener in self.sync_listeners:
            listener(record)

        # Set the alarm for the next execution (Section 3.3: "set up an
        # alarm at the end of each execution").
        self.set_local_timer(self.params.sync_interval, self._begin_sync, tag="sync-alarm")

    # ------------------------------------------------------------------

    @property
    def rounds_completed(self) -> int:
        """Number of Sync executions completed so far."""
        return len(self.sync_records)
