"""Clock estimation (Section 3.1, Definition 4).

A processor ``p`` estimates how far peer ``q``'s clock is from its own
by a ping/pong exchange: ``p`` stamps its local send time ``S``, ``q``
answers with its current clock ``C``, ``p`` stamps its local receive
time ``R`` and computes::

    d = C - (R + S) / 2        # estimated C_q - C_p at local midpoint
    a = (R - S) / 2            # self-reported error bound

If no reply arrives within ``MaxWait`` local time, the estimate is
``(d, a) = (0, +inf)`` — an estimate so weak the convergence function's
order statistics push it to the extremes, where the ``f+1``-st
selection discards it.

The module also implements the Section 3.1 optimization of sending
``k`` pings and keeping the answer with the smallest round trip, which
tightens ``a`` on jittery links (experiment E10).

:class:`EstimationSession` is the bookkeeping object a protocol process
uses to run all of its per-peer estimations in parallel, as the paper's
analysis assumes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.runtime.messages import Message, Ping, Pong

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.process import Process


@dataclass(frozen=True)
class ClockEstimate:
    """Result of estimating one peer's clock (Definition 4).

    Attributes:
        peer: The estimated processor.
        distance: ``d`` — estimated ``C_peer - C_self``.
        accuracy: ``a`` — error bound; ``math.inf`` encodes a timeout.
        round_trip: Local round-trip time ``R - S`` of the winning ping
            (``math.inf`` on timeout); kept for diagnostics.
    """

    peer: int
    distance: float
    accuracy: float
    round_trip: float = math.inf

    @property
    def timed_out(self) -> bool:
        """Whether this estimate is the timeout placeholder ``(0, inf)``."""
        return math.isinf(self.accuracy)

    @property
    def overestimate(self) -> float:
        """``d + a``: upper bound on the peer's clock distance."""
        return self.distance + self.accuracy

    @property
    def underestimate(self) -> float:
        """``d - a``: lower bound on the peer's clock distance."""
        return self.distance - self.accuracy


def timeout_estimate(peer: int) -> ClockEstimate:
    """The Definition-4 fallback when a peer does not answer in time."""
    return ClockEstimate(peer=peer, distance=0.0, accuracy=math.inf)


def self_estimate(node_id: int) -> ClockEstimate:
    """A processor's trivially exact estimate of its own clock."""
    return ClockEstimate(peer=node_id, distance=0.0, accuracy=0.0, round_trip=0.0)


_session_counter = itertools.count(1)


class EstimationSession:
    """One parallel round of clock estimations by a single processor.

    Lifecycle: construct, :meth:`begin` (sends the pings), feed every
    arriving :class:`Pong` to :meth:`on_pong`, and when the ``MaxWait``
    timer fires call :meth:`finish` to obtain one
    :class:`ClockEstimate` per peer (timeouts filled in).

    Args:
        owner: The process running the estimation.
        peers: Peers to estimate (usually all neighbors).
        pings_per_peer: Number of pings per peer; with ``k > 1`` the
            reply with the smallest local round trip wins (Section 3.1's
            NTP-style optimization).

    Attributes:
        complete: True once every peer has produced at least one reply.
    """

    def __init__(self, owner: "Process", peers: list[int], pings_per_peer: int = 1) -> None:
        if pings_per_peer < 1:
            raise ValueError(f"pings_per_peer must be >= 1, got {pings_per_peer}")
        self.owner = owner
        self.peers = list(peers)
        self.pings_per_peer = pings_per_peer
        self.session_id = next(_session_counter)
        self._send_times: dict[int, tuple[int, float]] = {}  # nonce -> (peer, S)
        self._best: dict[int, ClockEstimate] = {}
        self._awaiting: set[int] = set(self.peers)  # peers with no reply yet
        self._nonce_counter = itertools.count()
        self._started = False
        self._round_no = 0

    # ------------------------------------------------------------------

    def begin(self, round_no: int = 0) -> None:
        """Send all pings, stamping each with the local send time ``S``.

        All pings leave in the same simulator instant, so the send stamp
        is read once (the clock is a pure function of real time).
        """
        self._started = True
        self._round_no = round_no
        send_local = self.owner.local_now()
        obs = self.owner.obs
        for peer in self.peers:
            for _ in range(self.pings_per_peer):
                nonce = self._make_nonce()
                self._send_times[nonce] = (peer, send_local)
                self.owner.send(peer, Ping(nonce=nonce, round_no=round_no))
            if obs is not None:
                # One event per peer regardless of pings_per_peer; nonces
                # are deliberately excluded (the module-global session
                # counter is shared across runs in one process, so they
                # would break byte-identical streams).
                obs.publish("est.ping", node=self.owner.node_id, peer=peer,
                            round=round_no, pings=self.pings_per_peer)

    def _make_nonce(self) -> int:
        # Globally unique across sessions of this process: sessions never
        # accept each other's (or their own stale) replies.
        return (self.session_id << 20) | next(self._nonce_counter)

    def on_pong(self, message: Message) -> bool:
        """Process a reply; returns True if it belonged to this session.

        A reply is only accepted from the peer the ping was addressed to
        (link authentication) and only once per nonce.
        """
        pong = message.payload
        if not isinstance(pong, Pong):
            return False
        if not isinstance(pong.clock_value, (int, float)) \
                or not math.isfinite(pong.clock_value):
            # Trust boundary: a Byzantine peer can put anything in the
            # clock field.  NaN is the dangerous case — its position
            # under sorting is input-order dependent, which would make
            # the f+1 order statistics adversary-steerable.  Malformed
            # replies are treated as no reply at all (the nonce stays
            # pending, so an honest retransmission could still land).
            return False
        entry = self._send_times.pop(pong.nonce, None)
        if entry is None:
            return False
        peer, sent_local = entry
        if peer != message.sender:
            # Authenticated links make this impossible for good peers; a
            # Byzantine peer echoing someone else's nonce is ignored.
            return False
        receive_local = self.owner.local_now()
        round_trip = receive_local - sent_local
        estimate = ClockEstimate(
            peer=peer,
            distance=pong.clock_value - (receive_local + sent_local) / 2.0,
            accuracy=round_trip / 2.0,
            round_trip=round_trip,
        )
        best = self._best.get(peer)
        if best is None or estimate.accuracy < best.accuracy:
            self._best[peer] = estimate
        self._awaiting.discard(peer)
        obs = self.owner.obs
        if obs is not None:
            obs.publish("est.pong", node=self.owner.node_id, peer=peer,
                        round=self._round_no, rtt=round_trip,
                        distance=estimate.distance,
                        accuracy=estimate.accuracy)
        return True

    def finish(self) -> dict[int, ClockEstimate]:
        """Return the per-peer estimates, inserting timeout placeholders."""
        results: dict[int, ClockEstimate] = {}
        obs = self.owner.obs
        for peer in self.peers:
            best = self._best.get(peer)
            if best is None:
                best = timeout_estimate(peer)
                if obs is not None:
                    obs.publish("est.timeout", node=self.owner.node_id,
                                peer=peer, round=self._round_no)
            results[peer] = best
        return results

    @property
    def complete(self) -> bool:
        """True once every peer has at least one accepted reply."""
        return self._started and not self._awaiting
