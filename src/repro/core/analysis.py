"""Analysis tooling: checking the paper's claims against simulation runs.

Three checkers, mirroring the structure of Section 4 / Appendix A:

* :func:`envelope_trajectory` — Lemma 7(i)/(ii): per analysis interval
  ``T``, the good-set bias envelope must not grow and must shrink
  toward the ``~16*epsilon`` floor at the lemma's ``7/8`` rate (plus
  the drift and reading-error allowances).
* :func:`recovery_trajectory` / :func:`halving_holds` — Lemma 7(iii) /
  Claim 8(iii): a released processor's distance to the good range at
  least halves (plus slack) per interval.
* :func:`theorem5_verdict` — Theorem 5: end-to-end comparison of a
  run's measured deviation/drift/discontinuity against the bounds.

These are *measurement* tools: they never assume the protocol is
correct, only that the samples and the audited corruption intervals
are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.params import ProtocolParams, Theorem5Bounds
from repro.errors import MeasurementError
from repro.metrics.measures import AccuracyReport
from repro.metrics.sampler import ClockSamples, CorruptionInterval, WindowIndex


@dataclass(frozen=True)
class EnvelopeStep:
    """Good-set bias envelope across one analysis interval of length T.

    Attributes:
        index: Interval number ``i`` (interval is ``[i*T, (i+1)*T]``).
        t_start: Interval start (real time).
        t_end: Interval end.
        width_start: Good-set bias spread at ``t_start``.
        width_end: Good-set bias spread at ``t_end``.
        lemma_bound: Lemma 7's guarantee for ``width_end`` given
            ``width_start``: ``(7/8)*width_start + 2*epsilon + 2*rho*T``.
        at_floor: True when ``width_start/2 <= 8*epsilon`` so the
            lemma's shrink clause does not apply (convergence has
            bottomed out); ``holds`` then checks only non-expansion
            beyond the floor width.
        holds: Whether the applicable guarantee held.
        good_nodes: Size of the good set used.
    """

    index: int
    t_start: float
    t_end: float
    width_start: float
    width_end: float
    lemma_bound: float
    at_floor: bool
    holds: bool
    good_nodes: int


def _spread(samples: ClockSamples, nodes: Sequence[int], index: int) -> float:
    biases = [samples.bias(node, index) for node in nodes]
    return max(biases) - min(biases)


def _nodes_quiet_during(corruptions: Sequence[CorruptionInterval], n: int,
                        lo: float, hi: float) -> list[int]:
    """Nodes with no corruption overlapping ``[lo, hi]`` (one-shot query).

    Batch consumers (:func:`envelope_trajectory`,
    :func:`recovery_trajectory`) use a precomputed
    :class:`~repro.metrics.sampler.WindowIndex` cursor instead, which
    answers the same query bit-identically in O(1) amortized.
    """
    bad = {c.node for c in corruptions if c.overlaps(lo, hi)}
    return [node for node in range(n) if node not in bad]


def envelope_trajectory(samples: ClockSamples, corruptions: Sequence[CorruptionInterval],
                        params: ProtocolParams, start: float = 0.0,
                        floor_slack: float = 0.0) -> list[EnvelopeStep]:
    """Measure the good-set envelope across consecutive T-intervals.

    For each interval ``[t, t + T]`` the good set is the Lemma 7 ``G``:
    nodes non-faulty during ``[t - MaxWait, t + T]``.  The measured
    spreads are compared against the Lemma 7(ii) shrink bound, or — once
    the spread reaches the lemma's floor (``D <= 8*epsilon``) — against
    the floor width ``16*epsilon + 2*rho*T`` plus ``floor_slack``.

    Args:
        samples: Grid clock samples of the run.
        corruptions: Audited corruption intervals.
        params: The protocol parameterization (supplies ``T``,
            ``epsilon``, ``rho``).
        start: Begin at this real time (skip initial convergence).
        floor_slack: Extra allowance for the floor check; useful when
            message jitter makes single-sample spreads noisy.

    Returns:
        One :class:`EnvelopeStep` per complete interval in the run.
    """
    if len(samples) < 2:
        raise MeasurementError("envelope trajectory needs at least two samples")
    t_interval = params.t_interval
    horizon = samples.times[-1]
    steps: list[EnvelopeStep] = []
    # Lemma 7's G at anchor t is "quiet during [t - MaxWait, t + T]" —
    # exactly a WindowIndex(before=MaxWait, after=T) lookup.
    quiet = WindowIndex(corruptions, params.n, before=params.max_wait,
                        after=t_interval).cursor()
    index = 0
    t = start
    while t + t_interval <= horizon + 1e-9:
        good = sorted(quiet.included_at(t))
        if len(good) >= 2:
            i_start = samples.index_at_or_after(t)
            i_end = samples.index_at_or_after(t + t_interval)
            width_start = _spread(samples, good, i_start)
            width_end = _spread(samples, good, i_end)
            d_half = width_start / 2.0
            at_floor = d_half <= 8.0 * params.epsilon
            shrink_bound = (7.0 / 8.0) * width_start + 2.0 * params.epsilon \
                + 2.0 * params.rho * t_interval
            floor_bound = 16.0 * params.epsilon + 2.0 * params.rho * t_interval \
                + floor_slack
            lemma_bound = max(shrink_bound, floor_bound) if at_floor else shrink_bound
            steps.append(EnvelopeStep(
                index=index, t_start=t, t_end=t + t_interval,
                width_start=width_start, width_end=width_end,
                lemma_bound=lemma_bound, at_floor=at_floor,
                holds=width_end <= lemma_bound + 1e-12,
                good_nodes=len(good),
            ))
        t += t_interval
        index += 1
    return steps


# ----------------------------------------------------------------------
# Recovery (Lemma 7(iii) / Claim 8(iii))
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RecoveryStep:
    """Distance of a recovering node to the good bias range, per interval.

    Attributes:
        index: Intervals elapsed since release.
        time: Sample real time.
        distance: Bias distance outside the good range (0 if inside).
    """

    index: int
    time: float
    distance: float


def recovery_trajectory(samples: ClockSamples, corruptions: Sequence[CorruptionInterval],
                        params: ProtocolParams, node: int, release_time: float,
                        intervals: int | None = None) -> list[RecoveryStep]:
    """Distance of ``node``'s bias to the good range at interval ends.

    Measured at ``release_time + i*T`` for ``i = 0, 1, ...`` while
    samples last.  The good range at each time is the bias span of the
    nodes non-faulty during the preceding interval of length ``T``.
    """
    t_interval = params.t_interval
    horizon = samples.times[-1]
    steps: list[RecoveryStep] = []
    quiet = WindowIndex(corruptions, params.n, before=t_interval).cursor()
    i = 0
    while True:
        t = release_time + i * t_interval
        if t > horizon or (intervals is not None and i > intervals):
            break
        sample_index = samples.index_at_or_after(t)
        good = [g for g in sorted(quiet.included_at(t)) if g != node]
        if good:
            biases = [samples.bias(g, sample_index) for g in good]
            own = samples.bias(node, sample_index)
            distance = max(0.0, max(min(biases) - own, own - max(biases)))
            steps.append(RecoveryStep(index=i, time=t, distance=distance))
        i += 1
    return steps


def halving_holds(trajectory: Sequence[RecoveryStep], slack: float) -> bool:
    """Whether each interval at least halves the distance (within slack).

    Claim 8(iii) gives ``dist_{i+1} <= dist_i / 2 + C/2``-style
    residues; callers pass an appropriate ``slack`` (typically the
    Theorem 5 deviation bound, since "inside the good range" is only
    measurable up to the good clocks' own spread).
    """
    for earlier, later in zip(trajectory, trajectory[1:]):
        if later.distance > earlier.distance / 2.0 + slack:
            return False
    return True


# ----------------------------------------------------------------------
# Theorem 5 verdict
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Theorem5Verdict:
    """Measured-vs-bound comparison for one run.

    Attributes:
        bounds: The theoretical bounds for the run's parameters.
        measured_deviation: Max good-set deviation observed.
        measured_drift: Implied logical drift observed.
        measured_discontinuity: Largest good-state correction observed.
        deviation_ok: ``measured <= bound`` for Theorem 5(i).
        drift_ok: ``measured <= bound`` for the drift half of 5(ii).
        discontinuity_ok: ``measured <= bound`` for the discontinuity
            half of 5(ii).
    """

    bounds: Theorem5Bounds
    measured_deviation: float
    measured_drift: float
    measured_discontinuity: float
    deviation_ok: bool
    drift_ok: bool
    discontinuity_ok: bool

    @property
    def all_ok(self) -> bool:
        """All three Theorem 5 guarantees held."""
        return self.deviation_ok and self.drift_ok and self.discontinuity_ok


def theorem5_verdict(params: ProtocolParams, measured_deviation: float,
                     accuracy: AccuracyReport) -> Theorem5Verdict:
    """Compare a run's measurements against the Theorem 5 bounds."""
    bounds = params.bounds()
    return Theorem5Verdict(
        bounds=bounds,
        measured_deviation=measured_deviation,
        measured_drift=accuracy.implied_drift,
        measured_discontinuity=accuracy.max_discontinuity,
        deviation_ok=measured_deviation <= bounds.max_deviation + 1e-12,
        drift_ok=accuracy.implied_drift <= bounds.logical_drift + 1e-12,
        discontinuity_ok=accuracy.max_discontinuity <= bounds.discontinuity + 1e-12,
    )


# ----------------------------------------------------------------------
# Figure 1 / Figure 2 consistency
# ----------------------------------------------------------------------

def verify_bias_formulation(samples: ClockSamples, sync_records: Sequence,
                            tolerance: float = 1e-9) -> int:
    """Check the Figure 2 claim: the bias view is the clock view shifted.

    For every sync record, the clock-value correction applied in
    Figure 1 must equal the bias correction of Figure 2 — i.e. the
    node's bias immediately after the sync equals its bias immediately
    before plus the recorded correction (biases and clock values differ
    by the same ``tau``, which cancels).

    We verify it from the records themselves: ``local_before`` is the
    clock just before the adjustment, so the bias before is
    ``local_before - real_time`` and after is that plus ``correction``;
    by Definition 1 the clock after must read
    ``local_before + correction``.  Any mismatch indicates the
    adjustment was not applied atomically.

    Returns:
        The number of records checked.

    Raises:
        MeasurementError: On the first inconsistent record.
    """
    checked = 0
    for record in sync_records:
        bias_before = record.local_before - record.real_time
        bias_after = bias_before + record.correction
        clock_after = record.local_before + record.correction
        if abs((clock_after - record.real_time) - bias_after) > tolerance:
            raise MeasurementError(
                f"bias formulation mismatch at node {record.node_id}, "
                f"round {record.round_no}"
            )
        checked += 1
    return checked


# ----------------------------------------------------------------------
# Section 4.3 proof sketch: Properties 1-3, checked on real runs
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PropertyCheck:
    """Outcome of one Section 4.3 property over one analysis interval.

    Attributes:
        name: ``"P1"`` (containment), ``"P2"`` (one-sided bounds), or
            ``"P3"`` (7/8 contraction).
        holds: Whether the property held within its slack.
        detail: Human-readable bound-vs-observed summary.
    """

    name: str
    holds: bool
    detail: str


def section43_properties(samples: ClockSamples,
                         corruptions: Sequence[CorruptionInterval],
                         params: ProtocolParams, interval_start: float,
                         slack_epsilons: float = 4.0) -> list[PropertyCheck]:
    """Check the three properties of the Section 4.3 proof overview.

    The paper proves Lemma 7 via three steps over an interval
    ``[tau0, tau0 + T]`` with good set ``G`` whose biases start in
    ``[-D, D]`` (we translate to the measured range, median ``Z``):

    * **Property 1** — biases of ``G`` remain in the starting range
      throughout the interval;
    * **Property 2** — nodes starting below the median stay bounded by
      ``(Z + 3D)/4`` above, and nodes starting above it by
      ``(Z - 3D)/4`` below;
    * **Property 3** — at the interval's end every bias of ``G`` lies in
      ``[(Z - 7D)/8, (Z + 7D)/8]``.

    The paper proves these for the idealized ``rho = epsilon = 0``
    setting; on a real run we allow ``slack_epsilons * epsilon`` plus
    the drift widening ``2 * rho * (tau - tau0)`` on each bound.

    Args:
        interval_start: ``tau0`` (should be at least one interval into
            the run so startup transients have settled).
        slack_epsilons: Reading-error multiples granted to each bound.

    Returns:
        Three :class:`PropertyCheck` entries (P1, P2, P3).

    Raises:
        MeasurementError: If the good set is too small or the samples
            do not cover the interval.
    """
    t_interval = params.t_interval
    tau0 = interval_start
    tau1 = tau0 + t_interval
    good = _nodes_quiet_during(corruptions, params.n,
                               max(0.0, tau0 - params.max_wait), tau1)
    if len(good) < 2:
        raise MeasurementError(
            f"good set too small ({len(good)}) for interval [{tau0}, {tau1}]")
    i0 = samples.index_at_or_after(tau0)
    i1 = samples.index_at_or_after(tau1)

    start = {node: samples.bias(node, i0) for node in good}
    lo, hi = min(start.values()), max(start.values())
    center = (lo + hi) / 2.0
    d_half = (hi - lo) / 2.0
    ordered = sorted(start.values())
    median = ordered[len(ordered) // 2]
    z_rel = median - center  # the paper's Z in the centered frame
    slack0 = slack_epsilons * params.epsilon

    # Property 1: containment throughout the interval.
    p1_holds, p1_worst = True, 0.0
    for i in range(i0, i1 + 1):
        tau = samples.times[i]
        allow = slack0 + 2.0 * params.rho * (tau - tau0)
        for node in good:
            bias = samples.bias(node, i)
            excess = max(bias - (hi + allow), (lo - allow) - bias)
            if excess > 0:
                p1_holds = False
                p1_worst = max(p1_worst, excess)
    checks = [PropertyCheck(
        "P1", p1_holds,
        f"G stays in [{lo:.4g}, {hi:.4g}] (+slack); worst excess "
        f"{p1_worst:.4g}")]

    # Property 2: one-sided bounds for the low/high halves.
    low_nodes = [n for n in good if start[n] <= median]
    high_nodes = [n for n in good if start[n] >= median]
    upper_for_low = center + (z_rel + 3.0 * d_half) / 4.0
    lower_for_high = center + (z_rel - 3.0 * d_half) / 4.0
    p2_holds, p2_worst = True, 0.0
    for i in range(i0, i1 + 1):
        tau = samples.times[i]
        allow = slack0 + 2.0 * params.rho * (tau - tau0)
        for node in low_nodes:
            excess = samples.bias(node, i) - (upper_for_low + allow)
            if excess > 0:
                p2_holds, p2_worst = False, max(p2_worst, excess)
        for node in high_nodes:
            excess = (lower_for_high - allow) - samples.bias(node, i)
            if excess > 0:
                p2_holds, p2_worst = False, max(p2_worst, excess)
    checks.append(PropertyCheck(
        "P2", p2_holds,
        f"low half <= {upper_for_low:.4g}, high half >= "
        f"{lower_for_high:.4g} (+slack); worst excess {p2_worst:.4g}"))

    # Property 3: 7/8 contraction at the interval end.
    allow_end = slack0 + 2.0 * params.rho * t_interval
    p3_lo = center + (z_rel - 7.0 * d_half) / 8.0 - allow_end
    p3_hi = center + (z_rel + 7.0 * d_half) / 8.0 + allow_end
    end_biases = [samples.bias(node, i1) for node in good]
    p3_holds = all(p3_lo <= b <= p3_hi for b in end_biases)
    checks.append(PropertyCheck(
        "P3", p3_holds,
        f"end biases in [{min(end_biases):.4g}, {max(end_biases):.4g}] vs "
        f"bound [{p3_lo:.4g}, {p3_hi:.4g}]"))
    return checks
