"""The Figure 2 bias formulation as a second, independent implementation.

The paper presents the protocol twice: Figure 1 over clock values, and
Figure 2 over biases (``B = C - tau``), stressing that Figure 2 "is
just an alternative view of the real protocol" and "cannot be
implemented as it is described ... since a processor does not know its
bias".  In a simulator the real time *is* available, so the bias
formulation **can** be implemented literally — which makes the paper's
equivalence claim checkable by experiment rather than by reading:

:class:`BiasSyncProcess` executes Figure 2 verbatim (over/underestimate
``B_q``, select the f+1-st statistics of biases, update ``B_p``), and
``tests/test_core_sync_bias.py`` runs it against the Figure 1
implementation under identical seeds, asserting *bitwise identical*
correction sequences and clock trajectories.

This class is an analysis artifact: it reads the runtime's real time to
compute biases, which no deployable processor could.  Everything else —
message flow, timers, estimation — is shared with
:class:`~repro.core.sync.SyncProcess`, so the only difference under
test is the arithmetic of Figure 1 vs Figure 2.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.convergence import kth_largest, kth_smallest
from repro.core.estimation import ClockEstimate, self_estimate
from repro.core.sync import SyncProcess, SyncRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass


class BiasSyncProcess(SyncProcess):
    """Figure 2, implemented literally over biases.

    Inherits the entire message/timer machinery of
    :class:`~repro.core.sync.SyncProcess`; only ``_complete_sync`` is
    replaced with the bias-space arithmetic of Figure 2:

    * ``B_up(q) = B_p + d_q + a_q`` (line 6: overestimate of ``B_q``),
    * ``B_dn(q) = B_p + d_q - a_q`` (line 7: underestimate),
    * ``B(m)`` = f+1-st smallest ``B_up``; ``B(M)`` = f+1-st largest
      ``B_dn`` (lines 8-9),
    * lines 10-12 select the new ``B_p`` and the clock is set so that
      its bias equals it.
    """

    def _complete_sync(self) -> None:
        session = self._session
        if session is None:
            return
        self._session = None
        self._deadline = None

        estimates: list[ClockEstimate] = list(session.finish().values())
        replies = sum(1 for e in estimates if not e.timed_out)
        if self.params.include_self:
            estimates.append(self_estimate(self.node_id))

        tau = self.real_now()
        local_before = self.local_now()
        bias_p = local_before - tau  # B_p: the analysis-only read

        # Figure 2 lines 6-9, in absolute bias space.
        b_up = [bias_p + e.distance + e.accuracy for e in estimates]
        b_dn = [bias_p + e.distance - e.accuracy for e in estimates]
        b_m = kth_smallest(b_up, self.params.f)
        b_big_m = kth_largest(b_dn, self.params.f)

        if not (math.isfinite(b_m) and math.isfinite(b_big_m)):
            new_bias = bias_p  # too many timeouts: refuse to move
        elif (bias_p - b_m <= self.params.way_off
                and b_big_m - bias_p <= self.params.way_off):
            # Line 11: B_p <- (min(B(m), B_p) + max(B(M), B_p)) / 2.
            new_bias = (min(b_m, bias_p) + max(b_big_m, bias_p)) / 2.0
        else:
            # Line 12: B_p <- (B(m) + B(M)) / 2.
            new_bias = (b_m + b_big_m) / 2.0

        correction = new_bias - bias_p
        self.clock.adjust(tau, correction)

        record = SyncRecord(
            node_id=self.node_id,
            round_no=self._round,
            real_time=tau,
            local_before=local_before,
            correction=correction,
            m=b_m - bias_p,          # back to Figure 1's relative frame
            big_m=b_big_m - bias_p,
            own_discarded=bool(
                math.isfinite(b_m) and math.isfinite(b_big_m)
                and not (bias_p - b_m <= self.params.way_off
                         and b_big_m - bias_p <= self.params.way_off)),
            replies=replies,
        )
        self.sync_records.append(record)
        for listener in self.sync_listeners:
            listener(record)

        self.set_local_timer(self.params.sync_interval, self._begin_sync,
                             tag="sync-alarm")


def make_bias_sync(runtime, params, start_phase):
    """Factory for the Figure 2 twin (not registered by default — it is
    an analysis artifact, not a deployable protocol)."""
    return BiasSyncProcess(runtime, params, start_phase=start_phase)
