"""Run-trace recording: messages, corruptions, and sync executions.

The trace recorder is a passive observer wired into the network tap and
the protocol processes' sync listeners.  It exists for three consumers:

* post-hoc debugging of a surprising run;
* the Figure 1 / Figure 2 consistency checks in
  :mod:`repro.core.analysis` (which need the full sync history);
* the examples, which print human-readable timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.sync import SyncRecord
    from repro.net.message import Message


@dataclass(frozen=True)
class MessageRecord:
    """Compact record of a delivered message.

    Attributes:
        sender: Authenticated sender.
        recipient: Addressee.
        kind: Payload class name (``Ping``, ``Pong``, ...).
        sent_at: Transmission real time.
        delivered_at: Delivery real time.
    """

    sender: int
    recipient: int
    kind: str
    sent_at: float
    delivered_at: float


@dataclass(frozen=True)
class CorruptionRecord:
    """A break-in or release performed by the adversary.

    Attributes:
        node: The affected processor.
        time: Real time of the action.
        action: ``"break_in"`` or ``"release"``.
        strategy: Name of the Byzantine strategy involved.
    """

    node: int
    time: float
    action: str
    strategy: str


@dataclass
class TraceRecorder:
    """Accumulates the observable history of one run.

    Attributes:
        messages: Delivered messages (only if ``record_messages``).
        syncs: Every completed Sync execution, all nodes, time-ordered.
        corruptions: Break-in/release actions.
        record_messages: Message recording is opt-in — long runs deliver
            millions of messages.
    """

    record_messages: bool = False
    messages: list[MessageRecord] = field(default_factory=list)
    syncs: list["SyncRecord"] = field(default_factory=list)
    corruptions: list[CorruptionRecord] = field(default_factory=list)

    # -- wiring hooks ------------------------------------------------------

    def on_message(self, message: "Message") -> None:
        """Network tap callback."""
        if not self.record_messages:
            return
        self.messages.append(MessageRecord(
            sender=message.sender,
            recipient=message.recipient,
            kind=type(message.payload).__name__,
            sent_at=message.sent_at,
            delivered_at=message.delivered_at,
        ))

    def on_sync(self, record: "SyncRecord") -> None:
        """Sync-listener callback."""
        self.syncs.append(record)

    def on_corruption(self, node: int, time: float, action: str, strategy: str) -> None:
        """Adversary action callback."""
        self.corruptions.append(CorruptionRecord(node, time, action, strategy))

    # -- queries -----------------------------------------------------------

    def syncs_for(self, node: int) -> list["SyncRecord"]:
        """All sync records of one node, in execution order."""
        return [r for r in self.syncs if r.node_id == node]

    def syncs_between(self, lo: float, hi: float) -> list["SyncRecord"]:
        """All sync records completed in the real-time window ``[lo, hi]``."""
        return [r for r in self.syncs if lo <= r.real_time <= hi]

    def discarded_own_clock(self) -> list["SyncRecord"]:
        """Sync records where the WayOff branch fired (recovery jumps)."""
        return [r for r in self.syncs if r.own_discarded]
