"""Run-trace recording: messages, corruptions, and sync executions.

The trace recorder is a passive observer wired into the network tap and
the protocol processes' sync listeners.  It exists for three consumers:

* post-hoc debugging of a surprising run;
* the Figure 1 / Figure 2 consistency checks in
  :mod:`repro.core.analysis` (which need the full sync history);
* the examples, which print human-readable timelines.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.sync import SyncRecord
    from repro.runtime.messages import Message


@dataclass(frozen=True)
class MessageRecord:
    """Compact record of a delivered message.

    Attributes:
        sender: Authenticated sender.
        recipient: Addressee.
        kind: Payload class name (``Ping``, ``Pong``, ...).
        sent_at: Transmission real time.
        delivered_at: Delivery real time.
    """

    sender: int
    recipient: int
    kind: str
    sent_at: float
    delivered_at: float


@dataclass(frozen=True)
class CorruptionRecord:
    """A break-in or release performed by the adversary.

    Attributes:
        node: The affected processor.
        time: Real time of the action.
        action: ``"break_in"`` or ``"release"``.
        strategy: Name of the Byzantine strategy involved.
    """

    node: int
    time: float
    action: str
    strategy: str


@dataclass
class TraceRecorder:
    """Accumulates the observable history of one run.

    Attributes:
        messages: Delivered messages (only if ``record_messages``).
        syncs: Every completed Sync execution, all nodes, time-ordered
            by construction — listeners fire at simulator event times,
            which are non-decreasing, so append order is time order.
        corruptions: Break-in/release actions.
        record_messages: Message recording is opt-in — long runs deliver
            millions of messages.
    """

    record_messages: bool = False
    messages: list[MessageRecord] = field(default_factory=list)
    syncs: list["SyncRecord"] = field(default_factory=list)
    corruptions: list[CorruptionRecord] = field(default_factory=list)
    # Query acceleration: per-node sync lists and a parallel completion-
    # time array for bisection.  Rebuilt lazily if `syncs` was mutated
    # directly (tests and fixtures do this), so the indexed queries
    # always agree with a linear rescan.
    _by_node: dict[int, list["SyncRecord"]] = field(
        default_factory=dict, repr=False)
    _sync_times: list[float] = field(default_factory=list, repr=False)
    _indexed: int = field(default=0, repr=False)

    # -- wiring hooks ------------------------------------------------------

    def on_message(self, message: "Message") -> None:
        """Network tap callback."""
        if not self.record_messages:
            return
        self.messages.append(MessageRecord(
            sender=message.sender,
            recipient=message.recipient,
            kind=type(message.payload).__name__,
            sent_at=message.sent_at,
            delivered_at=message.delivered_at,
        ))

    def on_sync(self, record: "SyncRecord") -> None:
        """Sync-listener callback."""
        if self._indexed == len(self.syncs):
            self._index_one(record)
        self.syncs.append(record)

    def _index_one(self, record: "SyncRecord") -> None:
        bucket = self._by_node.get(record.node_id)
        if bucket is None:
            bucket = self._by_node[record.node_id] = []
        bucket.append(record)
        self._sync_times.append(record.real_time)
        self._indexed += 1

    def _ensure_index(self) -> None:
        """Rebuild the index if ``syncs`` was appended to directly."""
        if self._indexed == len(self.syncs):
            return
        self._by_node.clear()
        self._sync_times.clear()
        self._indexed = 0
        for record in self.syncs:
            self._index_one(record)

    def on_corruption(self, node: int, time: float, action: str, strategy: str) -> None:
        """Adversary action callback."""
        self.corruptions.append(CorruptionRecord(node, time, action, strategy))

    # -- queries -----------------------------------------------------------

    def syncs_for(self, node: int) -> list["SyncRecord"]:
        """All sync records of one node, in execution order.

        Served from a per-node index maintained by :meth:`on_sync`, so
        repeated queries do not rescan the full history.
        """
        self._ensure_index()
        return list(self._by_node.get(node, ()))

    def syncs_between(self, lo: float, hi: float) -> list["SyncRecord"]:
        """All sync records completed in the real-time window ``[lo, hi]``.

        ``syncs`` is time-ordered by construction, so the window is
        located by bisection instead of a full scan.
        """
        self._ensure_index()
        start = bisect.bisect_left(self._sync_times, lo)
        stop = bisect.bisect_right(self._sync_times, hi)
        return self.syncs[start:stop]

    def discarded_own_clock(self) -> list["SyncRecord"]:
        """Sync records where the WayOff branch fired (recovery jumps)."""
        return [r for r in self.syncs if r.own_discarded]
