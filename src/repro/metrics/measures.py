"""Measurements matching the paper's Definition 3 requirements.

Three families of measures, one per requirement:

* **Synchronization** — :func:`deviation_series` / :func:`max_deviation`:
  the maximum clock difference over the Definition 3 good set, per
  sample and overall (checked against Theorem 5(i)).
* **Accuracy** — :func:`accuracy_report`: measured logical drift and
  discontinuity over good stretches (checked against Theorem 5(ii)).
* **Recovery** — :func:`recovery_report`: for every adversary release,
  how long until the victim's clock re-enters (and stays in) the good
  range (checked against Claim 8(iii)'s geometric convergence).

All measures run on a :class:`~repro.metrics.sampler.GoodSetIndex`
(piecewise-constant good sets, O(log C) lookups) and the columnar
reductions of :mod:`repro.metrics.columns`; every function accepts a
prebuilt index via the ``index`` keyword so one sweep serves the whole
report.  Results are bit-identical to evaluating the Definition 3
predicates per sample over row-oriented lists — the property suite
enforces this.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import MeasurementError
from repro.metrics.columns import spread_slice
from repro.metrics.sampler import ClockSamples, CorruptionInterval, GoodSetIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock


# ----------------------------------------------------------------------
# Synchronization (Definition 3 i)
# ----------------------------------------------------------------------

def deviation_series(samples: ClockSamples, corruptions: Sequence[CorruptionInterval],
                     pi: float, n: int, warmup: float = 0.0, *,
                     index: GoodSetIndex | None = None) -> list[tuple[float, float]]:
    """Per-sample maximum clock deviation over the good set.

    Iterates the good-set index's constant runs and reduces each run's
    columns in one batch, instead of re-deriving the good set per
    sample.

    Args:
        samples: Grid samples of every clock.
        corruptions: Audited corruption intervals.
        pi: The adversary period ``PI`` (defines the good set window).
        n: Total number of processors.
        warmup: Skip samples before this real time (initial convergence).
        index: Prebuilt :class:`GoodSetIndex` for these corruptions
            (built on the fly when omitted).

    Returns:
        ``(tau, max |C_p - C_q| over good p, q)`` per retained sample;
        samples whose good set has fewer than two members are skipped.
    """
    if index is None:
        index = GoodSetIndex(corruptions, pi, n)
    times = samples.times
    start = bisect.bisect_left(times, warmup)
    series: list[tuple[float, float]] = []
    for lo, hi, good in index.runs(times, start):
        if len(good) < 2:
            continue
        columns = [samples.clocks[node] for node in good]
        series.extend(zip(times[lo:hi], spread_slice(columns, lo, hi)))
    return series


def max_deviation(samples: ClockSamples, corruptions: Sequence[CorruptionInterval],
                  pi: float, n: int, warmup: float = 0.0, *,
                  index: GoodSetIndex | None = None) -> float:
    """Maximum good-set deviation over the run (Theorem 5(i) subject)."""
    series = deviation_series(samples, corruptions, pi, n, warmup, index=index)
    if not series:
        raise MeasurementError("no samples with a non-trivial good set after warmup")
    return max(dev for _, dev in series)


# ----------------------------------------------------------------------
# Accuracy (Definition 3 ii)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AccuracyReport:
    """Measured accuracy of good processors (Theorem 5(ii) subject).

    Attributes:
        max_discontinuity: Largest single clock correction applied by a
            processor while non-faulty.
        implied_drift: Smallest ``rho~`` making eq. (3) hold over every
            measured good stretch, given ``alpha = max_discontinuity``.
        stretches: Number of (node, good-stretch) pairs measured.
    """

    max_discontinuity: float
    implied_drift: float
    stretches: int


def good_stretches(corruptions: Sequence[CorruptionInterval], pi: float, n: int,
                   horizon: float) -> list[tuple[int, float, float]]:
    """Maximal stretches ``(node, t1, t2)`` where Definition 3(ii) applies.

    A stretch requires the node to be non-faulty during
    ``[t1 - PI, t2]``; stretches are clipped to ``[0, horizon]`` and the
    window requirement is clipped at time 0 like :func:`good_set`.

    Boundary convention: a stretch may start at exactly
    ``release + PI``, where the half-open reading of "non-faulty during"
    applies — the corruption *ends* at the instant the window begins, a
    measure-zero touch that cannot affect any clock reading.  (This is
    one instant more permissive than :func:`good_set`'s closed-interval
    reading, and strictly conservative for the accuracy measurement
    since recovery completes well within PI.)
    """
    stretches: list[tuple[int, float, float]] = []
    for node in range(n):
        bad = sorted((c.start, c.end) for c in corruptions if c.node == node)
        # Quiet gaps between corruption intervals (plus the run's edges).
        quiet: list[tuple[float, float]] = []
        cursor = 0.0
        for start, end in bad:
            if start > cursor:
                quiet.append((cursor, min(start, horizon)))
            cursor = max(cursor, end)
        if cursor < horizon:
            quiet.append((cursor, horizon))
        for lo, hi in quiet:
            t1 = lo + pi if lo > 0.0 else 0.0  # need [t1 - PI, t2] non-faulty
            if t1 < hi:
                stretches.append((node, t1, hi))
    return stretches


def accuracy_report(samples: ClockSamples, corruptions: Sequence[CorruptionInterval],
                    clocks: dict[int, "LogicalClock"], pi: float, n: int,
                    min_span: float = 0.0, *,
                    index: GoodSetIndex | None = None) -> AccuracyReport:
    """Measure discontinuity and implied logical drift over good stretches.

    ``alpha`` (discontinuity) is taken as the largest adjustment a node
    applied while not faulty.  Given that ``alpha``, the implied drift is
    the smallest ``rho~`` for which eq. (3) holds across each measured
    stretch's endpoints.

    Args:
        samples: Grid samples.
        corruptions: Audited corruption intervals.
        clocks: Logical clocks (for their adjustment histories).
        pi: Adversary period.
        n: Number of processors.
        min_span: Ignore stretches shorter than this (drift estimates
            over tiny spans are dominated by the discontinuity term).
        index: Prebuilt :class:`GoodSetIndex` for these corruptions.
    """
    if not samples.times:
        raise MeasurementError("cannot measure accuracy with no samples")
    if index is None:
        index = GoodSetIndex(corruptions, pi, n)
    horizon = samples.times[-1]

    alpha = 0.0
    for node, clock in clocks.items():
        for tau, delta, _ in clock.adjustments:
            # Definition 3(ii) covers a correction at time tau only if
            # the node was non-faulty throughout [tau - PI, tau]; both
            # adversary resets and post-release recovery jumps fall
            # outside the guarantee.
            if node not in index.good_at(tau):
                continue
            alpha = max(alpha, abs(delta))

    implied = 0.0
    measured = 0
    for node, t1, t2 in good_stretches(corruptions, pi, n, horizon):
        if t2 - t1 < max(min_span, 2 * (samples.times[1] - samples.times[0]) if len(samples.times) > 1 else 0.0):
            continue
        i1 = samples.index_at_or_after(t1)
        # The end sample must not cross into the next corruption (the
        # break-in may scramble the clock at exactly t2).
        i2 = samples.index_at_or_before(t2) if t2 < horizon else len(samples.times) - 1
        tau1, tau2 = samples.times[i1], samples.times[i2]
        if tau2 <= tau1:
            continue
        span = tau2 - tau1
        advance = samples.clocks[node][i2] - samples.clocks[node][i1]
        measured += 1
        # eq. (3): advance <= span * (1 + rho~) + alpha
        #          advance >= span / (1 + rho~) - alpha
        up = (advance - alpha) / span - 1.0
        down = span / (advance + alpha) - 1.0 if advance + alpha > 0 else math.inf
        implied = max(implied, up, down, 0.0)

    return AccuracyReport(max_discontinuity=alpha, implied_drift=implied, stretches=measured)


# ----------------------------------------------------------------------
# Recovery (the paper's third requirement)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RecoveryEvent:
    """Recovery measurement for one adversary release.

    Attributes:
        node: The released processor.
        released_at: Real time the adversary left.
        rejoined_at: First sample time after release at which the node's
            clock is within ``tolerance`` of the good range and remains
            so for the rest of the observation window (``inf`` if never).
        initial_distance: Clock distance to the good range at release.
    """

    node: int
    released_at: float
    rejoined_at: float
    initial_distance: float

    @property
    def recovery_time(self) -> float:
        """Elapsed real time from release to stable rejoin."""
        return self.rejoined_at - self.released_at


@dataclass(frozen=True)
class RecoveryReport:
    """All recovery events of a run.

    Attributes:
        events: One entry per adversary release observed in-sample.
        tolerance: Distance-to-good-range threshold used.
    """

    events: list[RecoveryEvent] = field(default_factory=list)
    tolerance: float = 0.0

    @property
    def max_recovery_time(self) -> float:
        """Worst recovery time (``inf`` when some node never rejoined)."""
        if not self.events:
            return 0.0
        return max(event.recovery_time for event in self.events)

    @property
    def all_recovered(self) -> bool:
        """Whether every released node stably rejoined."""
        return all(math.isfinite(event.recovery_time) for event in self.events)


def _good_range(samples: ClockSamples, index: GoodSetIndex, at: int,
                exclude: int | None = None) -> tuple[float, float] | None:
    """Clock range of the good set at sample ``at``, minus one node.

    Recovery measurement excludes the recovering node itself: once PI
    has passed since its release it formally re-enters the good set,
    and a still-lost clock would otherwise widen the very range it is
    measured against.
    """
    good = set(index.good_at(samples.times[at]))
    good.discard(exclude)
    if not good:
        return None
    values = [samples.clocks[node][at] for node in good]
    return min(values), max(values)


def recovery_report(samples: ClockSamples, corruptions: Sequence[CorruptionInterval],
                    pi: float, n: int, tolerance: float,
                    settle: float | None = None, *,
                    index: GoodSetIndex | None = None) -> RecoveryReport:
    """Measure the recovery time of every released processor.

    A node counts as rejoined at the first sample after its release
    where its clock is within ``tolerance`` of the good range and stays
    within it for the following ``settle`` seconds (default ``PI``), or
    to the end of the run if less remains.

    Args:
        samples: Grid samples.
        corruptions: Audited corruption intervals (finite ends only are
            measured).
        pi: Adversary period.
        n: Number of processors.
        tolerance: Maximum distance from the good range that counts as
            recovered; typically the Theorem 5 deviation bound.
        settle: Stability window; default ``pi``.
        index: Prebuilt :class:`GoodSetIndex` for these corruptions.
    """
    if settle is None:
        settle = pi
    if index is None:
        index = GoodSetIndex(corruptions, pi, n)
    events: list[RecoveryEvent] = []
    horizon = samples.times[-1] if samples.times else 0.0
    for corruption in corruptions:
        if not math.isfinite(corruption.end) or corruption.end >= horizon:
            continue
        start_index = samples.index_at_or_after(corruption.end)
        bounds0 = _good_range(samples, index, start_index,
                              exclude=corruption.node)
        node_values = samples.clocks[corruption.node]
        if bounds0 is None:
            continue
        initial = max(0.0, max(bounds0[0] - node_values[start_index],
                               node_values[start_index] - bounds0[1]))
        rejoined = math.inf
        for i in range(start_index, len(samples.times)):
            if _stably_within(samples, index, corruption.node, i,
                              tolerance, settle):
                rejoined = samples.times[i]
                break
        events.append(RecoveryEvent(
            node=corruption.node,
            released_at=corruption.end,
            rejoined_at=rejoined,
            initial_distance=initial,
        ))
    return RecoveryReport(events=events, tolerance=tolerance)


def _stably_within(samples: ClockSamples, index: GoodSetIndex, node: int,
                   start_index: int, tolerance: float, settle: float) -> bool:
    """Whether ``node`` stays within tolerance of the good range.

    Checks every sample from ``start_index`` through the settle window;
    samples whose (exclusion-adjusted) good set is empty are vacuously
    fine.
    """
    end_time = samples.times[start_index] + settle
    for i in range(start_index, len(samples.times)):
        if samples.times[i] > end_time:
            break
        bounds = _good_range(samples, index, i, exclude=node)
        if bounds is None:
            continue
        value = samples.clocks[node][i]
        if value < bounds[0] - tolerance or value > bounds[1] + tolerance:
            return False
    return True


def deviation_percentiles(samples: ClockSamples,
                          corruptions: Sequence[CorruptionInterval],
                          pi: float, n: int, warmup: float = 0.0,
                          percentiles: Sequence[float] = (50.0, 95.0, 99.0, 100.0),
                          *, index: GoodSetIndex | None = None,
                          ) -> dict[float, float]:
    """Percentiles of the good-set deviation series.

    The paper's bounds are worst-case; practical protocols are judged on
    typical behaviour too ("practical protocols ... may provide better
    results in typical cases", Section 5).  This reports both: the
    median/tails of the per-sample deviation alongside the max that
    Theorem 5(i) bounds.

    Args:
        percentiles: Values in ``(0, 100]``; 100 is the maximum.
        index: Prebuilt :class:`GoodSetIndex` for these corruptions.

    Raises:
        MeasurementError: On an empty series or bad percentile.
    """
    series = [dev for _, dev in deviation_series(samples, corruptions, pi, n,
                                                 warmup, index=index)]
    if not series:
        raise MeasurementError("no deviation samples after warmup")
    return series_percentiles(series, percentiles)


def envelope_occupancy(deviations: Sequence[float], bound: float,
                       slack: float = 1e-12) -> float:
    """Fraction of deviation samples within ``bound + slack``.

    The Theorem 5(i) *envelope occupancy*: how much of the run the
    good-set deviation actually spent inside the guaranteed envelope
    (1.0 for a clean run; the verdict only reports whether the max
    stayed inside).  Shared by the post-hoc and streaming paths so both
    report byte-identical occupancy.

    Returns:
        ``nan`` on an empty series (no occupancy to speak of).
    """
    total = len(deviations)
    if total == 0:
        return math.nan
    inside = sum(1 for dev in deviations if dev <= bound + slack)
    return inside / total


def series_percentiles(series: Sequence[float],
                       percentiles: Sequence[float] = (50.0, 95.0, 99.0, 100.0),
                       ) -> dict[float, float]:
    """Percentiles of a raw deviation series (nearest-rank method).

    Shared by the post-hoc path (:func:`deviation_percentiles`) and the
    streaming path (:class:`~repro.metrics.streaming.OnlineMeasures`),
    so both report byte-identical tails.

    Raises:
        MeasurementError: On a percentile outside ``(0, 100]``.
    """
    ordered = sorted(series)
    result: dict[float, float] = {}
    for p in percentiles:
        if not (0.0 < p <= 100.0):
            raise MeasurementError(f"percentile must be in (0, 100], got {p}")
        rank = max(0, math.ceil(p / 100.0 * len(ordered)) - 1)
        result[p] = ordered[rank]
    return result
