"""Measurement pipeline: sampling, Definition 3 measures, traces, tables.

Also re-exports the engine's performance-counter surface
(:class:`~repro.sim.engine.EnginePerfCounters`): events/sec, heap
high-water mark, and cancelled-event ratio are measurements too, and the
benchmark harness consumes them from here.
"""

from repro.sim.engine import EnginePerfCounters
from repro.metrics.columns import HAVE_NUMPY, backend_name, numpy_active, set_numpy
from repro.metrics.measures import (
    AccuracyReport,
    RecoveryEvent,
    RecoveryReport,
    accuracy_report,
    deviation_percentiles,
    deviation_series,
    envelope_occupancy,
    good_stretches,
    max_deviation,
    recovery_report,
    series_percentiles,
)
from repro.metrics.export import result_to_dict, write_result
from repro.metrics.plots import bias_plane, sparkline, strip_chart
from repro.metrics.report import check_mark, format_value, ratio, table
from repro.metrics.sampler import (
    ClockSampler,
    ClockSamples,
    CorruptionInterval,
    GoodSetIndex,
    WindowIndex,
    faulty_at,
    good_set,
)
from repro.metrics.streaming import OnlineMeasures
from repro.metrics.trace import CorruptionRecord, MessageRecord, TraceRecorder

__all__ = [
    "EnginePerfCounters",
    "ClockSampler",
    "ClockSamples",
    "CorruptionInterval",
    "GoodSetIndex",
    "WindowIndex",
    "OnlineMeasures",
    "HAVE_NUMPY",
    "backend_name",
    "numpy_active",
    "set_numpy",
    "good_set",
    "faulty_at",
    "deviation_series",
    "deviation_percentiles",
    "envelope_occupancy",
    "series_percentiles",
    "max_deviation",
    "accuracy_report",
    "AccuracyReport",
    "good_stretches",
    "recovery_report",
    "RecoveryReport",
    "RecoveryEvent",
    "TraceRecorder",
    "MessageRecord",
    "CorruptionRecord",
    "table",
    "sparkline",
    "strip_chart",
    "bias_plane",
    "result_to_dict",
    "write_result",
    "format_value",
    "ratio",
    "check_mark",
]
