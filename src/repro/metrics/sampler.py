"""Clock sampling, good-set tracking, and the good-set index.

Theorem 5's guarantees quantify over the *good set* of Definition 3:
at time ``tau`` the synchronization bound applies to processors that
were non-faulty throughout ``[tau - PI, tau]``.  The sampler records
every processor's clock on a real-time grid; :func:`good_set` computes
the Definition 3 set from the audited corruption intervals.

Two implementations of the same semantics live here:

* :func:`good_set` / :func:`faulty_at` — the O(corruptions) reference
  predicates, evaluated per query.  Simple, obviously correct, and the
  oracle the property suite compares against.
* :class:`GoodSetIndex` — a one-pass sweep over corruption-interval
  endpoints yielding *piecewise-constant* good sets: point lookups cost
  O(log C), and batch iteration over a sample grid
  (:meth:`WindowIndex.runs`) is O(1) amortized per sample.  The index
  is **bit-exact** against the reference predicates for every float
  ``tau``: piece boundaries are located by bisection over the float
  ordinals of the reference predicate itself, so no algebraic
  rearrangement (with its own rounding) is ever trusted.

:class:`ClockSamples` stores every trace as a flat ``array('d')``
column (see :mod:`repro.metrics.columns`), which halves memory against
boxed-float lists and gives the measures a buffer numpy can reduce
zero-copy.
"""

from __future__ import annotations

import bisect
import math
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from repro.errors import MeasurementError
from repro.metrics.columns import as_column, new_column

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from array import array

    from repro.clocks.logical import LogicalClock
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class CorruptionInterval:
    """One adversary occupation of one node.

    Attributes:
        node: The corrupted processor.
        start: Real time of break-in (non-negative).
        end: Real time of release (``inf`` if never released).
    """

    node: int
    start: float
    end: float

    def overlaps(self, lo: float, hi: float) -> bool:
        """Whether this corruption intersects the window ``[lo, hi]``."""
        return self.start <= hi and self.end >= lo


def good_set(corruptions: Sequence[CorruptionInterval], tau: float, pi: float,
             n: int) -> set[int]:
    """Definition 3's good set: nodes non-faulty during ``[tau - PI, tau]``.

    Windows are clipped at time 0 (nothing was faulty before the run).
    This is the O(corruptions) reference predicate; batch consumers use
    :class:`GoodSetIndex`, which matches it bit-for-bit.
    """
    window_lo = max(0.0, tau - pi)
    bad = {c.node for c in corruptions if c.overlaps(window_lo, tau)}
    return set(range(n)) - bad


def faulty_at(corruptions: Sequence[CorruptionInterval], tau: float) -> set[int]:
    """Nodes controlled by the adversary at the instant ``tau``."""
    return {c.node for c in corruptions if c.start <= tau <= c.end}


# ----------------------------------------------------------------------
# Exact float-boundary search
# ----------------------------------------------------------------------
#
# A corruption [s, e] excludes a node from the window query at anchor
# ``t`` exactly when  s <= fl(t + after)  and  e >= max(0, fl(t - before)).
# Both conditions are monotone in ``t``, so each corruption excludes the
# node on one closed interval of anchors [L, U].  Because the conditions
# are evaluated in floating point, L and U are *not* simply ``s - after``
# and ``e + before``: they are the exact flip points of the predicates,
# which we find by bisection over float ordinals (total order on the
# finite doubles).  This is what makes the index bit-exact against the
# reference predicates.

_TOP = struct.unpack("<q", struct.pack("<d", math.inf))[0]


def _float_ordinal(x: float) -> int:
    """Map a float to an integer preserving numeric order (ties: +/-0)."""
    u = struct.unpack("<Q", struct.pack("<d", x))[0]
    return u if u < 1 << 63 else (1 << 63) - u


def _ordinal_float(o: int) -> float:
    """Inverse of :func:`_float_ordinal`."""
    u = o if o >= 0 else (1 << 63) - o
    return struct.unpack("<d", struct.pack("<Q", u))[0]


def _largest_true(pred: Callable[[float], bool], guess: float) -> float | None:
    """Largest float where a monotone true-below predicate holds.

    ``pred`` must be True on ``(-inf, U]`` and False above ``U`` for
    some threshold ``U``; returns ``U`` (``inf`` when never false,
    ``None`` when never true).  ``guess`` seeds the bracket and only
    affects speed, not the result.
    """
    lo = hi = _float_ordinal(guess)
    step = 1
    if pred(_ordinal_float(lo)):
        while True:
            hi = min(lo + step, _TOP)
            if not pred(_ordinal_float(hi)):
                break
            if hi == _TOP:
                return math.inf
            lo = hi
            step <<= 1
    else:
        while True:
            lo = max(hi - step, -_TOP)
            if pred(_ordinal_float(lo)):
                break
            if lo == -_TOP:
                return None
            hi = lo
            step <<= 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if pred(_ordinal_float(mid)):
            lo = mid
        else:
            hi = mid
    return _ordinal_float(lo)


def _smallest_true(pred: Callable[[float], bool], guess: float) -> float | None:
    """Smallest float where a monotone true-above predicate holds.

    Mirror of :func:`_largest_true` for predicates that are False below
    some threshold ``L`` and True on ``[L, inf)``.
    """
    lo = hi = _float_ordinal(guess)
    step = 1
    if pred(_ordinal_float(hi)):
        while True:
            lo = max(hi - step, -_TOP)
            if not pred(_ordinal_float(lo)):
                break
            if lo == -_TOP:
                return -math.inf
            hi = lo
            step <<= 1
    else:
        while True:
            hi = min(lo + step, _TOP)
            if pred(_ordinal_float(hi)):
                break
            if hi == _TOP:
                return None
            lo = hi
            step <<= 1
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if pred(_ordinal_float(mid)):
            hi = mid
        else:
            lo = mid
    return _ordinal_float(hi)


def _exclusion_span(corruption: CorruptionInterval, before: float,
                    after: float) -> tuple[float, float] | None:
    """Closed anchor interval on which ``corruption`` excludes its node.

    The anchor query window is ``[max(0, t - before), t + after]``; the
    span bounds are the exact floating-point flip points of the two
    overlap conditions (see module comment above).
    """
    s, e = corruption.start, corruption.end

    def cond_start(t: float) -> bool:
        return s <= t + after

    def cond_end(t: float) -> bool:
        return e >= max(0.0, t - before)

    lower = _smallest_true(cond_start, s - after if math.isfinite(s - after) else 0.0)
    if lower is None:
        return None
    if math.isinf(e) and e > 0:
        upper: float | None = math.inf
    else:
        upper = _largest_true(cond_end, e + before if math.isfinite(e + before) else 0.0)
    if upper is None or lower > upper:
        return None
    return lower, upper


# ----------------------------------------------------------------------
# Piecewise-constant window index
# ----------------------------------------------------------------------

class WindowIndex:
    """Piecewise-constant node sets for a sliding-window overlap query.

    Precomputes, in one endpoint sweep, the answer to "which nodes have
    a corruption overlapping ``[max(0, t - before), t + after]``" for
    *every* anchor ``t``: the timeline decomposes into at most
    ``2C + 1`` pieces (open gaps between boundaries and the boundary
    points themselves) on which the answer is constant.

    Lookups (:meth:`excluded_at` / :meth:`included_at`) cost O(log C);
    iterating a sorted sample grid (:meth:`runs` / :meth:`cursor`) costs
    O(1) amortized per sample.  Results are bit-exact against evaluating
    the overlap predicate per query.

    Args:
        corruptions: Audited corruption intervals.
        n: Total number of nodes (the universe).
        before: Window extension into the past (e.g. ``PI``).
        after: Window extension into the future (0 for Definition 3).
    """

    def __init__(self, corruptions: Iterable[CorruptionInterval], n: int,
                 before: float, after: float = 0.0) -> None:
        self.n = n
        self.before = float(before)
        self.after = float(after)
        self._all = frozenset(range(n))
        per_node: dict[int, list[tuple[float, float]]] = {}
        for corruption in corruptions:
            span = _exclusion_span(corruption, self.before, self.after)
            if span is not None:
                per_node.setdefault(corruption.node, []).append(span)

        starts: dict[float, list[int]] = {}
        ends: dict[float, list[int]] = {}
        boundary_set: set[float] = set()
        for node, spans in per_node.items():
            spans.sort()
            merged: list[list[float]] = []
            for lo, hi in spans:
                if merged and lo <= merged[-1][1]:
                    merged[-1][1] = max(merged[-1][1], hi)
                else:
                    merged.append([lo, hi])
            for lo, hi in merged:
                starts.setdefault(lo, []).append(node)
                boundary_set.add(lo)
                if math.isfinite(hi):
                    ends.setdefault(hi, []).append(node)
                    boundary_set.add(hi)

        self._bounds: list[float] = sorted(boundary_set)
        excluded: list[frozenset[int]] = []
        current: set[int] = set()
        for b in self._bounds:
            excluded.append(frozenset(current))          # open gap before b
            current.update(starts.get(b, ()))
            excluded.append(frozenset(current))          # the point b itself
            current.difference_update(ends.get(b, ()))
        excluded.append(frozenset(current))              # gap after the last bound
        self._excluded = excluded
        self._included = [self._all - piece for piece in excluded]

    # -- point lookups -------------------------------------------------

    def _piece(self, tau: float) -> int:
        i = bisect.bisect_left(self._bounds, tau)
        if i < len(self._bounds) and self._bounds[i] == tau:
            return 2 * i + 1
        return 2 * i

    def excluded_at(self, tau: float) -> frozenset[int]:
        """Nodes with a corruption overlapping the window anchored at ``tau``."""
        return self._excluded[self._piece(tau)]

    def included_at(self, tau: float) -> frozenset[int]:
        """Complement of :meth:`excluded_at` within ``range(n)``."""
        return self._included[self._piece(tau)]

    @property
    def boundaries(self) -> list[float]:
        """The piece boundaries, ascending (read-only copy)."""
        return list(self._bounds)

    # -- batch iteration -----------------------------------------------

    def runs(self, times: Sequence[float], start: int = 0,
             stop: int | None = None) -> Iterator[tuple[int, int, frozenset[int]]]:
        """Maximal runs of equal included sets over a sorted time grid.

        Yields ``(lo, hi, included)`` with ``lo < hi`` covering
        ``times[start:stop]`` without gaps: every sample index belongs
        to exactly one run.  Cost is O(runs * log samples) — O(1)
        amortized per sample for any realistic grid.

        Args:
            times: Ascending sample times.
            start: First sample index to cover.
            stop: One past the last index (default: ``len(times)``).
        """
        n_samples = len(times) if stop is None else stop
        bounds = self._bounds
        i = start
        run_lo = start
        run_set: frozenset[int] | None = None
        while i < n_samples:
            piece = self._piece(times[i])
            half, point = divmod(piece, 2)
            if point:
                j = bisect.bisect_right(times, bounds[half], i, n_samples)
            elif half < len(bounds):
                j = bisect.bisect_left(times, bounds[half], i, n_samples)
            else:
                j = n_samples
            included = self._included[piece]
            if run_set is None:
                run_set = included
            elif included != run_set:
                yield run_lo, i, run_set
                run_lo, run_set = i, included
            i = j
        if run_set is not None and run_lo < n_samples:
            yield run_lo, n_samples, run_set

    def cursor(self) -> "WindowCursor":
        """An O(1)-amortized lookup cursor for non-decreasing queries."""
        return WindowCursor(self)


class WindowCursor:
    """Streaming lookup into a :class:`WindowIndex`.

    For a *non-decreasing* sequence of query times (a live sampling
    grid), :meth:`included_at` walks the piece list forward instead of
    bisecting, making the whole pass O(samples + pieces).
    """

    def __init__(self, index: WindowIndex) -> None:
        self._index = index
        self._pos = 0

    def included_at(self, tau: float) -> frozenset[int]:
        """Included set at ``tau``; ``tau`` must not decrease across calls."""
        bounds = self._index._bounds
        pos = self._pos
        while True:
            half, point = divmod(pos, 2)
            if point:
                if tau <= bounds[half]:
                    break
            elif half >= len(bounds) or tau < bounds[half]:
                break
            pos += 1
        self._pos = pos
        return self._index._included[pos]


class GoodSetIndex(WindowIndex):
    """Definition 3 good sets, indexed for O(log C) lookup.

    One endpoint sweep turns the audited corruption intervals into
    piecewise-constant good sets: a corruption ``[s, e]`` of node ``p``
    keeps ``p`` out of the good set for every ``tau`` with
    ``s <= tau`` and ``e >= max(0, tau - PI)`` — a single closed
    ``tau``-interval whose float-exact bounds the sweep precomputes.

    Guaranteed bit-identical to :func:`good_set` /:func:`faulty_at` for
    every float ``tau`` (the property suite enforces this against
    random corruption sets).

    Args:
        corruptions: Audited corruption intervals.
        pi: The adversary period ``PI`` (Definition 3 window length).
        n: Total number of processors.
    """

    def __init__(self, corruptions: Sequence[CorruptionInterval], pi: float,
                 n: int) -> None:
        super().__init__(corruptions, n, before=pi, after=0.0)
        self.pi = float(pi)
        self._corruptions = tuple(corruptions)
        self._instant: WindowIndex | None = None

    @property
    def corruptions(self) -> tuple[CorruptionInterval, ...]:
        """The corruption intervals this index was built from."""
        return self._corruptions

    def good_at(self, tau: float) -> frozenset[int]:
        """The good set at ``tau`` (shared frozenset; do not mutate)."""
        return self.included_at(tau)

    def good_set(self, tau: float) -> set[int]:
        """A fresh mutable copy of the good set at ``tau``."""
        return set(self.included_at(tau))

    def iter_good(self, times: Sequence[float], start: int = 0,
                  stop: int | None = None) -> Iterator[tuple[int, int, frozenset[int]]]:
        """Alias of :meth:`WindowIndex.runs` under its good-set name."""
        return self.runs(times, start, stop)

    def faulty_nodes_at(self, tau: float) -> frozenset[int]:
        """Nodes adversary-controlled at the instant ``tau`` (O(log C)).

        Matches :func:`faulty_at` bit-for-bit for ``tau >= 0``.  The
        instant index is built lazily on first use.
        """
        if self._instant is None:
            self._instant = WindowIndex(self._corruptions, self.n, 0.0, 0.0)
        return self._instant.excluded_at(tau)


# ----------------------------------------------------------------------
# Columnar samples
# ----------------------------------------------------------------------

@dataclass
class ClockSamples:
    """Clock readings of every node on a shared real-time grid.

    Storage is columnar: ``times`` and every per-node trace are flat
    ``array('d')`` columns (list/tuple inputs are converted on
    construction).  Indexing semantics are unchanged from the historic
    list-of-floats layout; bulk reductions go through
    :mod:`repro.metrics.columns`, which picks the numpy fast path when
    available and guarantees byte-identical results either way.

    Attributes:
        times: Strictly increasing sample times (float column).
        clocks: ``clocks[node][i]`` is ``C_node(times[i])`` (float
            columns).
    """

    times: "array" = field(default_factory=new_column)
    clocks: dict[int, "array"] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.times = as_column(self.times)
        self.clocks = {node: as_column(vals) for node, vals in self.clocks.items()}

    @property
    def n(self) -> int:
        """Number of sampled nodes."""
        return len(self.clocks)

    def __len__(self) -> int:
        return len(self.times)

    def column(self, node: int) -> "array":
        """The raw float column of one node's trace (no copy)."""
        return self.clocks[node]

    def bias(self, node: int, index: int) -> float:
        """Bias ``B_node = C_node - tau`` at sample ``index``."""
        return self.clocks[node][index] - self.times[index]

    def biases_at(self, index: int, nodes: Sequence[int] | None = None) -> dict[int, float]:
        """Biases of ``nodes`` (default: all) at sample ``index``."""
        chosen = self.clocks.keys() if nodes is None else nodes
        return {node: self.bias(node, index) for node in chosen}

    def index_at_or_after(self, tau: float) -> int:
        """Index of the first sample at or after ``tau``.

        Raises:
            MeasurementError: If ``tau`` is past the last sample.
        """
        i = bisect.bisect_left(self.times, tau - 1e-12)
        if i >= len(self.times):
            raise MeasurementError(
                f"no sample at or after tau={tau}; run ends at {self.times[-1] if self.times else None}"
            )
        return i

    def index_at_or_before(self, tau: float) -> int:
        """Index of the last sample at or before ``tau``.

        Raises:
            MeasurementError: If ``tau`` precedes the first sample.
        """
        i = bisect.bisect_right(self.times, tau + 1e-12) - 1
        if i < 0:
            raise MeasurementError(
                f"no sample at or before tau={tau}; run starts at {self.times[0] if self.times else None}"
            )
        return i


class ClockSampler:
    """Schedules periodic clock sampling on a simulator.

    Args:
        sim: The simulator whose real time drives the grid.
        clocks: Logical clocks by node id.
        interval: Grid spacing in real time.
        on_sample: Optional callback invoked as ``on_sample(tau, index)``
            after each grid point is recorded.  This is how the flight
            recorder's live probes observe the run without adding any
            simulator events of their own (the schedule — and hence the
            run — is identical with or without observers).
        record: When False, grid events still fire (and drive
            ``on_sample``) but no trace is stored — streaming consumers
            (:class:`~repro.metrics.streaming.OnlineMeasures`) compute
            their measures from the callback, dropping the
            O(samples x n) trace memory entirely.

    Attributes:
        samples: The accumulating :class:`ClockSamples` (stays empty
            when ``record=False``).
    """

    def __init__(self, sim: "Simulator", clocks: dict[int, "LogicalClock"],
                 interval: float,
                 on_sample: Callable[[float, int], None] | None = None,
                 record: bool = True) -> None:
        if interval <= 0:
            raise MeasurementError(f"sampling interval must be positive, got {interval}")
        self.sim = sim
        self.clocks = clocks
        self.interval = float(interval)
        self.on_sample = on_sample
        self.record = bool(record)
        self.samples = ClockSamples(times=new_column(),
                                    clocks={node: new_column() for node in clocks})
        self._count = 0
        # Pre-bound (append, read) pairs: _sample runs on every grid
        # point and the node set is fixed, so the per-sample dict and
        # attribute lookups are hoisted out of the hot loop.
        self._columns = [(self.samples.clocks[node].append, clock.read)
                         for node, clock in clocks.items()]

    def start(self, until: float) -> None:
        """Schedule sampling events on the grid ``0, dt, 2dt, ... <= until``."""
        t = 0.0
        while t <= until + 1e-12:
            self.sim.schedule_at(t, self._sample, tag="sample")
            t += self.interval

    def _sample(self) -> None:
        tau = self.sim.now
        if self.record:
            times = self.samples.times
            times.append(tau)
            for append, read in self._columns:
                append(read(tau))
            index = len(times) - 1
        else:
            index = self._count
        self._count += 1
        if self.on_sample is not None:
            self.on_sample(tau, index)
