"""Clock sampling and good-set tracking.

Theorem 5's guarantees quantify over the *good set* of Definition 3:
at time ``tau`` the synchronization bound applies to processors that
were non-faulty throughout ``[tau - PI, tau]``.  The sampler records
every processor's clock on a real-time grid; :func:`good_set` computes
the Definition 3 set from the audited corruption intervals.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import MeasurementError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class CorruptionInterval:
    """One adversary occupation of one node.

    Attributes:
        node: The corrupted processor.
        start: Real time of break-in.
        end: Real time of release (``inf`` if never released).
    """

    node: int
    start: float
    end: float

    def overlaps(self, lo: float, hi: float) -> bool:
        """Whether this corruption intersects the window ``[lo, hi]``."""
        return self.start <= hi and self.end >= lo


def good_set(corruptions: Sequence[CorruptionInterval], tau: float, pi: float,
             n: int) -> set[int]:
    """Definition 3's good set: nodes non-faulty during ``[tau - PI, tau]``.

    Windows are clipped at time 0 (nothing was faulty before the run).
    """
    window_lo = max(0.0, tau - pi)
    bad = {c.node for c in corruptions if c.overlaps(window_lo, tau)}
    return set(range(n)) - bad


def faulty_at(corruptions: Sequence[CorruptionInterval], tau: float) -> set[int]:
    """Nodes controlled by the adversary at the instant ``tau``."""
    return {c.node for c in corruptions if c.start <= tau <= c.end}


@dataclass
class ClockSamples:
    """Clock readings of every node on a shared real-time grid.

    Attributes:
        times: Strictly increasing sample times.
        clocks: ``clocks[node][i]`` is ``C_node(times[i])``.
    """

    times: list[float] = field(default_factory=list)
    clocks: dict[int, list[float]] = field(default_factory=dict)

    @property
    def n(self) -> int:
        """Number of sampled nodes."""
        return len(self.clocks)

    def __len__(self) -> int:
        return len(self.times)

    def bias(self, node: int, index: int) -> float:
        """Bias ``B_node = C_node - tau`` at sample ``index``."""
        return self.clocks[node][index] - self.times[index]

    def biases_at(self, index: int, nodes: Sequence[int] | None = None) -> dict[int, float]:
        """Biases of ``nodes`` (default: all) at sample ``index``."""
        chosen = self.clocks.keys() if nodes is None else nodes
        return {node: self.bias(node, index) for node in chosen}

    def index_at_or_after(self, tau: float) -> int:
        """Index of the first sample at or after ``tau``.

        Raises:
            MeasurementError: If ``tau`` is past the last sample.
        """
        i = bisect.bisect_left(self.times, tau - 1e-12)
        if i >= len(self.times):
            raise MeasurementError(
                f"no sample at or after tau={tau}; run ends at {self.times[-1] if self.times else None}"
            )
        return i

    def index_at_or_before(self, tau: float) -> int:
        """Index of the last sample at or before ``tau``.

        Raises:
            MeasurementError: If ``tau`` precedes the first sample.
        """
        i = bisect.bisect_right(self.times, tau + 1e-12) - 1
        if i < 0:
            raise MeasurementError(
                f"no sample at or before tau={tau}; run starts at {self.times[0] if self.times else None}"
            )
        return i


class ClockSampler:
    """Schedules periodic clock sampling on a simulator.

    Args:
        sim: The simulator whose real time drives the grid.
        clocks: Logical clocks by node id.
        interval: Grid spacing in real time.
        on_sample: Optional callback invoked as ``on_sample(tau, index)``
            after each grid point is recorded.  This is how the flight
            recorder's live probes observe the run without adding any
            simulator events of their own (the schedule — and hence the
            run — is identical with or without observers).

    Attributes:
        samples: The accumulating :class:`ClockSamples`.
    """

    def __init__(self, sim: "Simulator", clocks: dict[int, "LogicalClock"],
                 interval: float,
                 on_sample: Callable[[float, int], None] | None = None) -> None:
        if interval <= 0:
            raise MeasurementError(f"sampling interval must be positive, got {interval}")
        self.sim = sim
        self.clocks = clocks
        self.interval = float(interval)
        self.on_sample = on_sample
        self.samples = ClockSamples(times=[], clocks={node: [] for node in clocks})
        # Pre-bound (append, read) pairs: _sample runs on every grid
        # point and the node set is fixed, so the per-sample dict and
        # attribute lookups are hoisted out of the hot loop.
        self._columns = [(self.samples.clocks[node].append, clock.read)
                         for node, clock in clocks.items()]

    def start(self, until: float) -> None:
        """Schedule sampling events on the grid ``0, dt, 2dt, ... <= until``."""
        t = 0.0
        while t <= until + 1e-12:
            self.sim.schedule_at(t, self._sample, tag="sample")
            t += self.interval

    def _sample(self) -> None:
        tau = self.sim.now
        times = self.samples.times
        times.append(tau)
        for append, read in self._columns:
            append(read(tau))
        if self.on_sample is not None:
            self.on_sample(tau, len(times) - 1)
