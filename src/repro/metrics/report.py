"""Plain-text result tables for the benchmark harness.

The benches regenerate the paper's (implied) evaluation as aligned text
tables — the same rows EXPERIMENTS.md records.  No plotting dependency:
tables print under ``pytest -s`` and are written to
``benchmarks/results/``.
"""

from __future__ import annotations

import math
from typing import Sequence


def format_value(value: object, precision: int = 6) -> str:
    """Render one cell: floats compactly, infinities symbolically."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        return f"{value:.{precision}g}"
    return str(value)


def table(headers: Sequence[str], rows: Sequence[Sequence[object]],
          title: str | None = None, precision: int = 6) -> str:
    """Format an aligned text table.

    Args:
        headers: Column names.
        rows: Row cells; rendered with :func:`format_value`.
        title: Optional title line printed above the table.
        precision: Significant digits for float cells.

    Returns:
        The table as a single string (no trailing newline).
    """
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def ratio(measured: float, bound: float) -> float:
    """``measured / bound`` with infinities handled (0 bound -> inf)."""
    if bound == 0:
        return math.inf if measured > 0 else 0.0
    return measured / bound


def check_mark(holds: bool) -> str:
    """ASCII pass/fail marker for table cells."""
    return "OK" if holds else "VIOLATED"
