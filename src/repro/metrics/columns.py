"""Columnar float storage and the optional numpy fast path.

The measurement pipeline stores every clock trace as a flat
``array('d')`` column (half the memory of a list of boxed floats, and a
buffer numpy can view zero-copy).  All bulk reductions used by the
measures are restricted to **max / min / subtraction** — operations
that are exact in IEEE-754 regardless of evaluation order — so the
pure-Python fallback and the numpy fast path produce *byte-identical*
results.  numpy is a test/perf extra, never a hard dependency: it is
auto-detected at import time and every caller degrades gracefully.

Backend selection:

* default — use numpy when importable (:data:`HAVE_NUMPY`);
* :func:`set_numpy` — force the pure-Python path (``False``), force
  numpy (``True``, raises if absent), or restore auto-detection
  (``None``).  The equivalence test suite uses this seam to run both
  backends on the same inputs and compare bytes.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

from repro.errors import MeasurementError

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less environments
    _np = None

#: Whether numpy was importable in this environment.
HAVE_NUMPY = _np is not None

#: Tri-state override: None = auto (use numpy iff available).
_FORCED: bool | None = None


def set_numpy(enabled: bool | None) -> None:
    """Force the reduction backend: True/False, or None for auto-detect.

    Raises:
        MeasurementError: When forcing numpy in an environment
            without it.
    """
    global _FORCED
    if enabled is True and not HAVE_NUMPY:
        raise MeasurementError("cannot force the numpy backend: numpy is not installed")
    _FORCED = enabled


def numpy_active() -> bool:
    """Whether reductions will take the numpy fast path right now."""
    if _FORCED is None:
        return HAVE_NUMPY
    return _FORCED


def backend_name() -> str:
    """``"numpy"`` or ``"python"`` — the active reduction backend."""
    return "numpy" if numpy_active() else "python"


def new_column() -> array:
    """An empty float column."""
    return array("d")


def as_column(values: Iterable[float]) -> array:
    """Coerce any float iterable into a column (no copy if already one)."""
    if isinstance(values, array) and values.typecode == "d":
        return values
    return array("d", values)


def spread_slice(columns: Sequence[Sequence[float]], lo: int, hi: int) -> list[float]:
    """Per-index ``max - min`` across ``columns`` over ``[lo, hi)``.

    The workhorse of the deviation series: given the clock columns of a
    constant good set and a sample-index slice, return the pairwise
    spread at each sample.  Exact: max/min pick an input bit pattern and
    a single IEEE subtraction is deterministic, so both backends return
    identical bytes.

    Args:
        columns: At least two equal-length float sequences.
        lo: First sample index (inclusive).
        hi: Last sample index (exclusive).
    """
    if numpy_active():
        rows = [_np.frombuffer(col, dtype=_np.float64, offset=8 * lo, count=hi - lo)
                if isinstance(col, array)
                else _np.asarray(col, dtype=_np.float64)[lo:hi]
                for col in columns]
        stacked_max = _np.maximum.reduce(rows)
        stacked_min = _np.minimum.reduce(rows)
        return (stacked_max - stacked_min).tolist()
    out = []
    for i in range(lo, hi):
        values = [col[i] for col in columns]
        out.append(max(values) - min(values))
    return out


def minmax_slice(columns: Sequence[Sequence[float]], lo: int, hi: int,
                 ) -> tuple[list[float], list[float]]:
    """Per-index ``(min, max)`` across ``columns`` over ``[lo, hi)``.

    Used by the recovery measurement for good-range bounds.  Same
    exactness contract as :func:`spread_slice`.
    """
    if numpy_active():
        rows = [_np.frombuffer(col, dtype=_np.float64, offset=8 * lo, count=hi - lo)
                if isinstance(col, array)
                else _np.asarray(col, dtype=_np.float64)[lo:hi]
                for col in columns]
        return (_np.minimum.reduce(rows).tolist(), _np.maximum.reduce(rows).tolist())
    mins, maxs = [], []
    for i in range(lo, hi):
        values = [col[i] for col in columns]
        mins.append(min(values))
        maxs.append(max(values))
    return mins, maxs
