"""JSON export of run results.

Serializes the interesting parts of a :class:`~repro.runner.experiment.
RunResult` — parameters, bounds, measures, verdict, corruption history,
and (optionally) the raw clock samples — into a plain-JSON dict, so
experiment pipelines can archive runs and diff them across versions.
Used by ``python -m repro run --json out.json``.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runner.experiment import RunResult


def _finite(value: float) -> float | str:
    """JSON has no inf/nan; encode them as strings."""
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if math.isnan(value):
        return "nan"
    return value


def result_to_dict(result: "RunResult", warmup: float = 0.0,
                   include_samples: bool = False) -> dict[str, Any]:
    """Serialize a run result to a JSON-compatible dict.

    Args:
        result: The run to export.
        warmup: Warmup passed to the measures.
        include_samples: Include the full clock sample arrays (large).
    """
    params = result.params
    bounds = params.bounds()
    verdict = result.verdict(warmup=warmup)
    recovery = result.recovery()

    payload: dict[str, Any] = {
        "scenario": {
            "name": result.scenario.name,
            "seed": result.scenario.seed,
            "duration": result.scenario.duration,
            "protocol": (result.scenario.protocol
                         if isinstance(result.scenario.protocol, str)
                         else getattr(result.scenario.protocol, "__name__",
                                      "custom")),
            "loss_rate": result.scenario.loss_rate,
        },
        "params": {
            "n": params.n, "f": params.f, "delta": params.delta,
            "rho": params.rho, "pi": params.pi,
            "sync_interval": params.sync_interval,
            "max_wait": params.max_wait, "way_off": params.way_off,
            "epsilon": params.epsilon,
        },
        "bounds": {
            "t_interval": bounds.t_interval, "k": bounds.k,
            "c": _finite(bounds.c),
            "max_deviation": _finite(bounds.max_deviation),
            "logical_drift": _finite(bounds.logical_drift),
            "discontinuity": _finite(bounds.discontinuity),
            "recovery_intervals": bounds.recovery_intervals,
        },
        "verdict": {
            "measured_deviation": _finite(verdict.measured_deviation),
            "measured_drift": _finite(verdict.measured_drift),
            "measured_discontinuity": _finite(verdict.measured_discontinuity),
            "deviation_ok": verdict.deviation_ok,
            "drift_ok": verdict.drift_ok,
            "discontinuity_ok": verdict.discontinuity_ok,
            "all_ok": verdict.all_ok,
            "warmup": warmup,
        },
        "recovery": {
            "tolerance": _finite(recovery.tolerance),
            "all_recovered": recovery.all_recovered,
            "max_recovery_time": _finite(recovery.max_recovery_time),
            "events": [
                {
                    "node": event.node,
                    "released_at": event.released_at,
                    "rejoined_at": _finite(event.rejoined_at),
                    "initial_distance": _finite(event.initial_distance),
                }
                for event in recovery.events
            ],
        },
        "corruptions": [
            {"node": c.node, "start": c.start, "end": _finite(c.end)}
            for c in result.corruptions
        ],
        "counters": {
            "events_processed": result.events_processed,
            "messages_delivered": result.messages_delivered,
            "sync_executions": len(result.trace.syncs),
        },
    }
    if result.perf is not None:
        perf = result.perf
        # Deterministic counters only: run_wall_time / events_per_second
        # are wall-clock quantities, and result records must stay a pure
        # function of (scenario, seed) — identical-seed runs are
        # byte-compared by the determinism checks.  The CLI prints the
        # wall-clock figures to stdout instead.
        payload["perf"] = {
            "events_processed": perf.events_processed,
            "events_pushed": perf.events_pushed,
            "events_cancelled": perf.events_cancelled,
            "cancelled_ratio": perf.cancelled_ratio,
            "heap_high_water": perf.heap_high_water,
            "pending_events": perf.pending_events,
        }
    if result.obs is not None:
        recorder = result.obs
        payload["obs"] = {
            "events": len(recorder.events),
            "spans": len(recorder.spans),
            "violations": [
                {
                    "probe": v.probe,
                    "time": v.time,
                    "node": v.node,
                    "measured": _finite(v.measured),
                    "bound": _finite(v.bound),
                }
                for v in recorder.violations
            ],
            "metrics": recorder.metrics.snapshot(),
        }
    if include_samples:
        payload["samples"] = {
            "times": list(result.samples.times),
            "clocks": {str(node): list(values)
                       for node, values in result.samples.clocks.items()},
        }
    return payload


def write_result(result: "RunResult", path: str | pathlib.Path,
                 warmup: float = 0.0, include_samples: bool = False) -> None:
    """Serialize and write a run result as JSON."""
    payload = result_to_dict(result, warmup=warmup,
                             include_samples=include_samples)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
