"""ASCII time-series rendering for examples and reports.

The environment has no plotting stack, and the examples want to *show*
trajectories — deviation decaying under attack, a recovering bias
homing in on the good envelope.  These renderers produce aligned ASCII
charts: sparklines for one-liners, multi-row strip charts for series,
and a bias-plane view that draws several nodes' biases against the
envelope, the closest textual analogue of the paper's Figure 3.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import MeasurementError

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], lo: float | None = None,
              hi: float | None = None) -> str:
    """One-character-per-value density strip.

    Args:
        values: The series (NaNs render as ``?``).
        lo: Bottom of the scale; defaults to the series minimum.
        hi: Top of the scale; defaults to the series maximum.
    """
    if not values:
        return ""
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return "?" * len(values)
    lo = min(finite) if lo is None else lo
    hi = max(finite) if hi is None else hi
    span = hi - lo
    chars = []
    for value in values:
        if not math.isfinite(value):
            chars.append("?")
            continue
        if span <= 0:
            chars.append(_SPARK_LEVELS[0])
            continue
        frac = min(1.0, max(0.0, (value - lo) / span))
        chars.append(_SPARK_LEVELS[min(len(_SPARK_LEVELS) - 1,
                                       int(frac * (len(_SPARK_LEVELS) - 1)))])
    return "".join(chars)


def strip_chart(series: Sequence[tuple[float, float]], width: int = 64,
                height: int = 10, title: str | None = None,
                hline: float | None = None,
                hline_label: str = "bound") -> str:
    """A multi-row ASCII chart of a ``(x, y)`` series.

    Args:
        series: Points, assumed x-sorted.
        width: Chart columns (series is bucket-averaged to fit).
        height: Chart rows.
        hline: Optional horizontal reference line (e.g. the Theorem 5
            bound), drawn with ``-`` and labelled.
        title: Optional title line.

    Raises:
        MeasurementError: On an empty series.
    """
    if not series:
        raise MeasurementError("cannot chart an empty series")
    xs = [x for x, _ in series]
    ys = [y for _, y in series]

    # Bucket-average into `width` columns.
    buckets: list[list[float]] = [[] for _ in range(width)]
    x_lo, x_hi = xs[0], xs[-1]
    x_span = max(x_hi - x_lo, 1e-12)
    for x, y in series:
        column = min(width - 1, int((x - x_lo) / x_span * width))
        buckets[column].append(y)
    column_values = [sum(b) / len(b) if b else math.nan for b in buckets]

    finite = [v for v in column_values if math.isfinite(v)]
    y_lo = min(finite + ([hline] if hline is not None else []))
    y_hi = max(finite + ([hline] if hline is not None else []))
    y_lo = min(y_lo, 0.0)
    y_span = max(y_hi - y_lo, 1e-12)

    def row_of(value: float) -> int:
        frac = (value - y_lo) / y_span
        return min(height - 1, max(0, int(round(frac * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    if hline is not None:
        hrow = row_of(hline)
        for col in range(width):
            grid[hrow][col] = "-"
    for col, value in enumerate(column_values):
        if math.isfinite(value):
            grid[row_of(value)][col] = "*"

    lines = []
    if title:
        lines.append(title)
    for r in range(height - 1, -1, -1):
        label = ""
        if hline is not None and r == row_of(hline):
            label = f"{hline:.3g} {hline_label}"
        elif r == height - 1:
            label = f"{y_hi:.3g}"
        elif r == 0:
            label = f"{y_lo:.3g}"
        lines.append(f"{label:>12} |" + "".join(grid[r]))
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(f"{'':13}{x_lo:<10.3g}{'':{max(0, width - 20)}}{x_hi:>10.3g}")
    return "\n".join(lines)


def bias_plane(samples, nodes: Sequence[int], lo_index: int = 0,
               hi_index: int | None = None, width: int = 64,
               height: int = 12, title: str | None = None) -> str:
    """Figure 3's (tau, beta)-plane as ASCII: one glyph per node.

    Args:
        samples: A :class:`~repro.metrics.sampler.ClockSamples`.
        nodes: Which nodes' bias trajectories to draw (max 10, each
            gets the glyph of its index digit).
        lo_index: First sample index to draw.
        hi_index: One past the last sample index (default: end).
        width: Chart columns.
        height: Chart rows.
    """
    if hi_index is None:
        hi_index = len(samples.times)
    indices = range(lo_index, hi_index)
    if not indices or not nodes:
        raise MeasurementError("bias_plane needs samples and nodes")
    if len(nodes) > 10:
        raise MeasurementError("bias_plane draws at most 10 nodes")

    biases = {node: [samples.bias(node, i) for i in indices] for node in nodes}
    all_values = [b for series in biases.values() for b in series]
    y_lo, y_hi = min(all_values), max(all_values)
    y_span = max(y_hi - y_lo, 1e-12)
    count = len(list(indices))

    grid = [[" "] * width for _ in range(height)]
    for rank, node in enumerate(nodes):
        glyph = str(rank % 10)
        for j, value in enumerate(biases[node]):
            col = min(width - 1, int(j / max(count - 1, 1) * (width - 1)))
            row = min(height - 1, max(0, int(round(
                (value - y_lo) / y_span * (height - 1)))))
            if grid[row][col] == " " or grid[row][col] == glyph:
                grid[row][col] = glyph
            else:
                grid[row][col] = "#"  # overlap marker

    lines = []
    if title:
        lines.append(title)
    for r in range(height - 1, -1, -1):
        label = f"{y_hi:.3g}" if r == height - 1 else (
            f"{y_lo:.3g}" if r == 0 else "")
        lines.append(f"{label:>12} |" + "".join(grid[r]))
    lines.append(" " * 13 + "+" + "-" * width)
    t_lo, t_hi = samples.times[lo_index], samples.times[hi_index - 1]
    lines.append(f"{'':13}{t_lo:<10.3g}{'':{max(0, width - 20)}}{t_hi:>10.3g}")
    return "\n".join(lines)
