"""Streaming measures: Definition 3 reports computed during the run.

:class:`OnlineMeasures` rides :class:`~repro.metrics.sampler.ClockSampler`'s
``on_sample`` hook (like the flight recorder's probes) and accumulates
everything the campaign's :class:`~repro.runner.campaign.RunRecord`
needs — the deviation series, accuracy stretch endpoints, recovery
state machines, envelope occupancy — while the simulation runs.
Combined with ``ClockSampler(record=False)``, a worker keeps O(n +
samples) state (one float pair per retained deviation sample) instead
of the full O(samples x n) trace, and ships a summary, not columns.

**Exactness contract**: every report is byte-identical to the post-hoc
path over recorded samples.  This works because clock reads are pure
functions of real time *at the moment of the read* (the sampler's grid
event), corruption intervals are known before the run (plan-based
adversary), and each post-hoc lookup has an online mirror:

* ``index_at_or_after(t)`` == capture at the first sample with
  ``tau >= t - 1e-12``;
* ``index_at_or_before(t)`` == rolling capture at the last sample with
  ``tau <= t + 1e-12``;
* the recovery scan's ``_stably_within`` == a candidate/confirm state
  machine (confirm is checked *before* the violation test, because a
  sample past the settle window is outside the candidate's window).

The property suite and ``tools/check_determinism.py --stream`` enforce
the contract end to end.
"""

from __future__ import annotations

import bisect
import math
from typing import TYPE_CHECKING, Sequence

from repro.errors import MeasurementError
from repro.metrics.columns import new_column
from repro.metrics.measures import (
    AccuracyReport,
    RecoveryEvent,
    RecoveryReport,
    envelope_occupancy,
    good_stretches,
    series_percentiles,
)
from repro.metrics.sampler import CorruptionInterval, GoodSetIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock

#: Grid-matching tolerance, identical to ClockSamples.index_at_or_*.
_EPS = 1e-12


class _RecoveryTracker:
    """Online mirror of one corruption's post-hoc recovery scan."""

    def __init__(self, corruption: CorruptionInterval, tolerance: float,
                 settle: float) -> None:
        self.corruption = corruption
        self.tolerance = tolerance
        self.settle = settle
        self.started = False
        self.skipped = False        # good range empty at the start sample
        self.initial = 0.0
        self.candidate: float | None = None
        self.rejoined = math.inf
        self.confirmed = False

    def _range(self, vals: dict[int, float],
               good: frozenset[int]) -> tuple[float, float] | None:
        """Good-range bounds excluding the recovering node itself."""
        others = set(good)
        others.discard(self.corruption.node)
        if not others:
            return None
        values = [vals[node] for node in others]
        return min(values), max(values)

    def observe(self, tau: float, vals: dict[int, float],
                good: frozenset[int]) -> None:
        """Feed one sample; no-op once confirmed or skipped."""
        if self.confirmed or self.skipped:
            return
        if not self.started:
            if tau < self.corruption.end - _EPS:
                return
            self.started = True
            bounds0 = self._range(vals, good)
            if bounds0 is None:
                self.skipped = True
                return
            own = vals[self.corruption.node]
            self.initial = max(0.0, max(bounds0[0] - own, own - bounds0[1]))
        # A sample past the settle window confirms the candidate before
        # its own violation status is considered (it lies outside the
        # candidate's window) — matching _stably_within exactly.
        if self.candidate is not None and tau > self.candidate + self.settle:
            self.confirmed = True
            self.rejoined = self.candidate
            return
        bounds = self._range(vals, good)
        value = vals[self.corruption.node]
        violating = bounds is not None and (
            value < bounds[0] - self.tolerance or value > bounds[1] + self.tolerance)
        if violating:
            self.candidate = None
        elif self.candidate is None:
            self.candidate = tau

    def finish(self) -> None:
        """End of run: a surviving candidate's (truncated) window is stable."""
        if self.candidate is not None and not self.confirmed:
            self.confirmed = True
            self.rejoined = self.candidate


class OnlineMeasures:
    """Accumulates every RunRecord measure from the sampling hook.

    Wire :meth:`on_sample` into :class:`~repro.metrics.sampler.ClockSampler`
    (``on_sample=``), run the simulation, call :meth:`finalize`, then
    query the same measure surface :class:`~repro.runner.experiment.RunResult`
    exposes.  Reports are byte-identical to the post-hoc path (see the
    module docstring for why).

    The recovery state machines need their thresholds *during* the run,
    so ``recovery_tolerance``/``recovery_settle`` are fixed at
    construction; :meth:`recovery` rejects other values.

    Args:
        clocks: Logical clocks by node (read at each grid point).
        corruptions: The run's audited corruption intervals (known
            upfront for plan-based adversaries).
        pi: The adversary period ``PI``.
        n: Total number of processors.
        recovery_tolerance: Distance-to-good-range threshold for the
            recovery report (typically the Theorem 5 deviation bound).
        recovery_settle: Recovery stability window; default ``pi``.
    """

    def __init__(self, clocks: dict[int, "LogicalClock"],
                 corruptions: Sequence[CorruptionInterval], pi: float, n: int,
                 recovery_tolerance: float,
                 recovery_settle: float | None = None) -> None:
        self.clocks = dict(clocks)
        self.corruptions = list(corruptions)
        self.pi = float(pi)
        self.n = int(n)
        self.recovery_tolerance = float(recovery_tolerance)
        self.recovery_settle = float(recovery_settle) if recovery_settle is not None else float(pi)
        self.index = GoodSetIndex(self.corruptions, self.pi, self.n)
        self._cursor = self.index.cursor()
        self._dev_taus = new_column()
        self._devs = new_column()
        self._count = 0
        self._tau0 = 0.0            # times[0] and times[1] (grid spacing)
        self._tau1 = 0.0
        self._last_tau = 0.0
        self._last_vals: dict[int, float] = {}
        # Accuracy stretch-endpoint captures: start thresholds are the
        # possible stretch starts t1 (lo + PI per quiet gap), end
        # thresholds the corruption starts that can clip a stretch.
        self._start_pending: dict[int, list[float]] = {}
        self._start_ptr: dict[int, int] = {}
        self._end_pending: dict[int, list[float]] = {}
        self._end_ptr: dict[int, int] = {}
        self._start_caps: dict[tuple[int, float], tuple[float, float]] = {}
        self._end_caps: dict[tuple[int, float], tuple[float, float]] = {}
        for node in range(self.n):
            bad = sorted((c.start, c.end) for c in self.corruptions
                         if c.node == node)
            gap_los = [0.0]
            cursor = 0.0
            for start, end in bad:
                cursor = max(cursor, end)
                if math.isfinite(cursor):
                    gap_los.append(cursor)
            t1s = sorted({lo + self.pi if lo > 0.0 else 0.0 for lo in gap_los})
            t2s = sorted({start for start, _ in bad if math.isfinite(start)})
            self._start_pending[node] = t1s
            self._start_ptr[node] = 0
            self._end_pending[node] = t2s
            self._end_ptr[node] = 0
        self._trackers = [
            _RecoveryTracker(c, self.recovery_tolerance, self.recovery_settle)
            for c in self.corruptions
        ]
        self._events: list[RecoveryEvent] | None = None
        self._finalized = False

    # ------------------------------------------------------------------
    # The sampling hook
    # ------------------------------------------------------------------

    def on_sample(self, tau: float, index: int) -> None:
        """Observe one grid point (``tau`` non-decreasing across calls)."""
        vals = {node: clock.read(tau) for node, clock in self.clocks.items()}
        if self._count == 0:
            self._tau0 = tau
        elif self._count == 1:
            self._tau1 = tau
        # Freeze matured last-at-or-before captures with the *previous*
        # sample (the last one satisfying tau <= t2 + eps).
        for node, pending in self._end_pending.items():
            ptr = self._end_ptr[node]
            while ptr < len(pending) and tau > pending[ptr] + _EPS:
                self._end_caps[(node, pending[ptr])] = (self._last_tau,
                                                        self._last_vals[node])
                ptr += 1
            self._end_ptr[node] = ptr
        # First-at-or-after captures trigger on the current sample.
        for node, pending in self._start_pending.items():
            ptr = self._start_ptr[node]
            while ptr < len(pending) and tau >= pending[ptr] - _EPS:
                self._start_caps[(node, pending[ptr])] = (tau, vals[node])
                ptr += 1
            self._start_ptr[node] = ptr

        good = self._cursor.included_at(tau)
        if len(good) >= 2:
            gvals = [vals[node] for node in good]
            self._dev_taus.append(tau)
            self._devs.append(max(gvals) - min(gvals))

        for tracker in self._trackers:
            tracker.observe(tau, vals, good)

        self._last_tau = tau
        self._last_vals = vals
        self._count += 1

    def finalize(self) -> None:
        """Close out end-of-run state; required before querying measures."""
        if self._finalized:
            return
        horizon = self._last_tau if self._count else 0.0
        # Unmatured end-captures: every remaining threshold satisfies
        # t2 + eps >= last tau, so the final sample is the capture.
        for node, pending in self._end_pending.items():
            for ptr in range(self._end_ptr[node], len(pending)):
                if self._count:
                    self._end_caps[(node, pending[ptr])] = (
                        self._last_tau, self._last_vals[node])
            self._end_ptr[node] = len(pending)
        events: list[RecoveryEvent] = []
        for tracker in self._trackers:
            corruption = tracker.corruption
            if not math.isfinite(corruption.end) or corruption.end >= horizon:
                continue
            if tracker.skipped:
                continue
            tracker.finish()
            events.append(RecoveryEvent(
                node=corruption.node,
                released_at=corruption.end,
                rejoined_at=tracker.rejoined,
                initial_distance=tracker.initial,
            ))
        self._events = events
        self._finalized = True

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise MeasurementError(
                "OnlineMeasures.finalize() must run before querying measures")

    # ------------------------------------------------------------------
    # The measure surface (mirrors RunResult)
    # ------------------------------------------------------------------

    def _dev_start(self, warmup: float) -> int:
        return bisect.bisect_left(self._dev_taus, warmup)

    def deviation_series(self, warmup: float = 0.0) -> list[tuple[float, float]]:
        """Good-set deviation per retained sample after ``warmup``."""
        self._require_finalized()
        lo = self._dev_start(warmup)
        return list(zip(self._dev_taus[lo:], self._devs[lo:]))

    def max_deviation(self, warmup: float = 0.0) -> float:
        """Maximum good-set deviation after ``warmup``."""
        self._require_finalized()
        lo = self._dev_start(warmup)
        if lo >= len(self._devs):
            raise MeasurementError("no samples with a non-trivial good set after warmup")
        return max(self._devs[lo:])

    def deviation_percentiles(self, warmup: float = 0.0,
                              percentiles: Sequence[float] = (50.0, 95.0, 99.0, 100.0),
                              ) -> dict[float, float]:
        """Median/tail percentiles of the deviation series."""
        self._require_finalized()
        lo = self._dev_start(warmup)
        series = self._devs[lo:]
        if not len(series):
            raise MeasurementError("no deviation samples after warmup")
        return series_percentiles(series, percentiles)

    def envelope_occupancy(self, bound: float, warmup: float = 0.0) -> float:
        """Fraction of post-warmup deviation samples within ``bound``."""
        self._require_finalized()
        lo = self._dev_start(warmup)
        return envelope_occupancy(self._devs[lo:], bound)

    def accuracy(self, min_span: float = 0.0) -> AccuracyReport:
        """Measured drift/discontinuity over good stretches."""
        self._require_finalized()
        if not self._count:
            raise MeasurementError("cannot measure accuracy with no samples")
        horizon = self._last_tau

        alpha = 0.0
        for node, clock in self.clocks.items():
            for tau, delta, _ in clock.adjustments:
                if node not in self.index.good_at(tau):
                    continue
                alpha = max(alpha, abs(delta))

        grid = 2 * (self._tau1 - self._tau0) if self._count > 1 else 0.0
        implied = 0.0
        measured = 0
        for node, t1, t2 in good_stretches(self.corruptions, self.pi, self.n,
                                           horizon):
            if t2 - t1 < max(min_span, grid):
                continue
            tau1, v1 = self._start_caps[(node, t1)]
            if t2 < horizon:
                tau2, v2 = self._end_caps[(node, t2)]
            else:
                tau2, v2 = self._last_tau, self._last_vals[node]
            if tau2 <= tau1:
                continue
            span = tau2 - tau1
            advance = v2 - v1
            measured += 1
            up = (advance - alpha) / span - 1.0
            down = span / (advance + alpha) - 1.0 if advance + alpha > 0 else math.inf
            implied = max(implied, up, down, 0.0)

        return AccuracyReport(max_discontinuity=alpha, implied_drift=implied,
                              stretches=measured)

    def recovery(self, tolerance: float | None = None,
                 settle: float | None = None) -> RecoveryReport:
        """Recovery report accumulated online.

        Raises:
            MeasurementError: When asked for a tolerance/settle other
                than the ones the state machines ran with.
        """
        self._require_finalized()
        if tolerance is not None and tolerance != self.recovery_tolerance:
            raise MeasurementError(
                f"streamed recovery was measured with tolerance="
                f"{self.recovery_tolerance}, cannot answer for {tolerance}")
        if settle is not None and settle != self.recovery_settle:
            raise MeasurementError(
                f"streamed recovery was measured with settle="
                f"{self.recovery_settle}, cannot answer for {settle}")
        assert self._events is not None
        return RecoveryReport(events=list(self._events),
                              tolerance=self.recovery_tolerance)
