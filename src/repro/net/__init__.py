"""Network substrate: authenticated bounded-delay links over topologies.

Implements the communication model of Section 2 of the paper: reliable
authenticated point-to-point links with delivery bound ``delta``, over a
full mesh or any explicit graph (including the Section 5 two-clique
counterexample).
"""

from repro.net.links import (
    AsymmetricDelay,
    DelayModel,
    FixedDelay,
    JitteredDelay,
    UniformDelay,
)
from repro.net.message import AppPayload, Message, Ping, Pong
from repro.net.network import Network
from repro.net.topology import Topology, from_edges, full_mesh, ring, two_cliques

__all__ = [
    "Message",
    "Ping",
    "Pong",
    "AppPayload",
    "Network",
    "Topology",
    "full_mesh",
    "two_cliques",
    "ring",
    "from_edges",
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "AsymmetricDelay",
    "JitteredDelay",
]
