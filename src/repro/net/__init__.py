"""Network substrate: authenticated bounded-delay links over topologies.

Implements the communication model of Section 2 of the paper: reliable
authenticated point-to-point links with delivery bound ``delta``, over a
full mesh or any explicit graph (including the Section 5 two-clique
counterexample).
"""

from repro.net.links import (
    DELAY_MODELS,
    AsymmetricDelay,
    DelayModel,
    DelaySpec,
    FixedDelay,
    HeterogeneousDelay,
    JitteredDelay,
    UniformDelay,
    register_delay_model,
)
from repro.net.message import AppPayload, Message, Ping, Pong
from repro.net.network import Network
from repro.net.topology import (
    TOPOLOGIES,
    Topology,
    TopologySpec,
    from_edges,
    full_mesh,
    register_topology,
    ring,
    two_cliques,
)

__all__ = [
    "Message",
    "Ping",
    "Pong",
    "AppPayload",
    "Network",
    "Topology",
    "TopologySpec",
    "TOPOLOGIES",
    "register_topology",
    "full_mesh",
    "two_cliques",
    "ring",
    "from_edges",
    "DelayModel",
    "DelaySpec",
    "DELAY_MODELS",
    "register_delay_model",
    "FixedDelay",
    "UniformDelay",
    "AsymmetricDelay",
    "JitteredDelay",
    "HeterogeneousDelay",
]
