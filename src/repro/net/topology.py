"""Communication topologies.

The paper's model is a fully connected graph (Section 2.1), but its
Section 5 discusses which *incomplete* graphs the protocol can and
cannot survive — including an explicit counterexample: a
``(3f+1)``-connected graph of ``6f+2`` nodes (two ``(3f+1)``-cliques
joined by a perfect matching) on which the protocol fails.  Topologies
here support both, plus arbitrary undirected graphs for exploration.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError, TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.params import ProtocolParams


class Topology:
    """An undirected communication graph over nodes ``0..n-1``.

    Attributes:
        n: Number of nodes.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise TopologyError(f"topology needs at least one node, got n={n}")
        self.n = int(n)
        self._adj: list[set[int]] = [set() for _ in range(self.n)]

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``.

        Raises:
            TopologyError: On self-loops or out-of-range nodes.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-loop at node {u} is not allowed")
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``{u, v}`` (no-op if absent)."""
        self._check_node(u)
        self._check_node(v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are directly connected."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def neighbors(self, u: int) -> list[int]:
        """Sorted neighbor list of ``u``."""
        self._check_node(u)
        return sorted(self._adj[u])

    def degree(self, u: int) -> int:
        """Number of neighbors of ``u``."""
        self._check_node(u)
        return len(self._adj[u])

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj) // 2

    def is_connected(self) -> bool:
        """Whether the graph is connected (BFS from node 0)."""
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self.n

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self.n):
            raise TopologyError(f"node {u} out of range for n={self.n}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(n={self.n}, edges={self.edge_count()})"


def full_mesh(n: int) -> Topology:
    """The paper's standard model: a complete graph on ``n`` nodes."""
    topo = Topology(n)
    for u in range(n):
        for v in range(u + 1, n):
            topo.add_edge(u, v)
    return topo


def two_cliques(f: int) -> Topology:
    """The Section 5 counterexample graph.

    Two cliques of ``3f+1`` nodes each (nodes ``0..3f`` and
    ``3f+1..6f+1``), with node ``i`` of the first clique joined to node
    ``i`` of the second.  The graph is ``(3f+1)``-connected, yet the
    Sync protocol cannot stop the cliques' clocks from drifting apart.

    Returns:
        A :class:`Topology` on ``6f+2`` nodes.
    """
    if f < 1:
        raise TopologyError(f"two_cliques needs f >= 1, got f={f}")
    size = 3 * f + 1
    topo = Topology(2 * size)
    for base in (0, size):
        for u in range(base, base + size):
            for v in range(u + 1, base + size):
                topo.add_edge(u, v)
    for i in range(size):
        topo.add_edge(i, size + i)
    return topo


def ring(n: int) -> Topology:
    """A cycle on ``n`` nodes — far below the connectivity the protocol
    needs; used in negative tests."""
    topo = Topology(n)
    for u in range(n):
        topo.add_edge(u, (u + 1) % n)
    return topo


def from_edges(n: int, edges: list[tuple[int, int]]) -> Topology:
    """Build a topology from an explicit undirected edge list."""
    topo = Topology(n)
    for u, v in edges:
        topo.add_edge(u, v)
    return topo


def random_connected(n: int, p: float, rng, min_degree: int = 1,
                     max_tries: int = 200) -> Topology:
    """A connected Erdos-Renyi-style graph with a minimum-degree floor.

    Used by the Section 5 connectivity study (experiment E13): the paper
    conjectures the protocol works when the non-faulty processors form a
    "sufficiently connected" subgraph; this generator produces the
    random test topologies.

    Args:
        n: Number of nodes.
        p: Independent edge probability.
        rng: Random stream (``random.Random``).
        min_degree: Resample until every node has at least this degree.
        max_tries: Give up after this many attempts.

    Raises:
        TopologyError: If no graph satisfying the constraints is found
            (``p`` too small for the requested degree floor).
    """
    for _ in range(max_tries):
        topo = Topology(n)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < p:
                    topo.add_edge(u, v)
        if topo.is_connected() and all(topo.degree(u) >= min_degree
                                       for u in range(n)):
            return topo
    raise TopologyError(
        f"could not sample a connected graph with min degree {min_degree} "
        f"at p={p} after {max_tries} tries"
    )


# ----------------------------------------------------------------------
# Topology registry and declarative specs
# ----------------------------------------------------------------------

TOPOLOGIES: dict[str, Callable[..., Topology]] = {}
"""Named topology builders reachable from declarative scenarios.

Builders that take an ``n`` parameter get it injected from the
scenario's ``params.n`` unless the spec supplies it explicitly."""


def register_topology(name: str) -> Callable[[Callable[..., Topology]],
                                             Callable[..., Topology]]:
    """Register a topology builder under ``name`` (decorator)."""

    def decorator(builder: Callable[..., Topology]) -> Callable[..., Topology]:
        TOPOLOGIES[name] = builder
        return builder

    return decorator


for _name, _builder in (("full-mesh", full_mesh), ("two-cliques", two_cliques),
                        ("ring", ring), ("from-edges", from_edges)):
    register_topology(_name)(_builder)
del _name, _builder


@dataclass(frozen=True)
class TopologySpec:
    """Declarative, picklable description of a communication graph.

    Attributes:
        kind: Registered builder name (a key of :data:`TOPOLOGIES`).
        options: Builder keyword arguments; ``n`` is injected from the
            scenario parameters when the builder wants one and the spec
            does not pin it.  JSON configs supply edge lists for
            ``from-edges`` as ``[[u, v], ...]``.
    """

    kind: str
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology {self.kind!r}; known: {sorted(TOPOLOGIES)}")

    def build(self, params: "ProtocolParams") -> Topology:
        """Instantiate the graph for the given parameterization."""
        builder = TOPOLOGIES[self.kind]
        kwargs = dict(self.options)
        if "edges" in kwargs:
            kwargs["edges"] = [tuple(edge) for edge in kwargs["edges"]]
        if "n" not in kwargs and "n" in inspect.signature(builder).parameters:
            kwargs["n"] = params.n
        try:
            return builder(**kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid options for topology {self.kind!r}: {exc}") from None

    def to_config(self) -> dict[str, Any]:
        """The JSON ``topology`` section: ``{"kind": ..., **options}``."""
        options = {
            key: ([list(edge) for edge in value] if key == "edges" else value)
            for key, value in self.options.items()
        }
        return {"kind": self.kind, **options}

    @classmethod
    def from_config(cls, spec: dict[str, Any]) -> "TopologySpec":
        """Parse the JSON ``topology`` section.

        Raises:
            ConfigurationError: On a missing or unknown ``kind`` key.
        """
        if "kind" not in spec:
            raise ConfigurationError(
                f"topology config requires a 'kind' key; got {sorted(spec)}")
        options = {key: value for key, value in spec.items() if key != "kind"}
        return cls(kind=spec["kind"], options=options)
