"""Communication topologies.

The paper's model is a fully connected graph (Section 2.1), but its
Section 5 discusses which *incomplete* graphs the protocol can and
cannot survive — including an explicit counterexample: a
``(3f+1)``-connected graph of ``6f+2`` nodes (two ``(3f+1)``-cliques
joined by a perfect matching) on which the protocol fails.  Topologies
here support both, plus arbitrary undirected graphs for exploration.
"""

from __future__ import annotations

from repro.errors import TopologyError


class Topology:
    """An undirected communication graph over nodes ``0..n-1``.

    Attributes:
        n: Number of nodes.
    """

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise TopologyError(f"topology needs at least one node, got n={n}")
        self.n = int(n)
        self._adj: list[set[int]] = [set() for _ in range(self.n)]

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``{u, v}``.

        Raises:
            TopologyError: On self-loops or out-of-range nodes.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise TopologyError(f"self-loop at node {u} is not allowed")
        self._adj[u].add(v)
        self._adj[v].add(u)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``{u, v}`` (no-op if absent)."""
        self._check_node(u)
        self._check_node(v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``u`` and ``v`` are directly connected."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adj[u]

    def neighbors(self, u: int) -> list[int]:
        """Sorted neighbor list of ``u``."""
        self._check_node(u)
        return sorted(self._adj[u])

    def degree(self, u: int) -> int:
        """Number of neighbors of ``u``."""
        self._check_node(u)
        return len(self._adj[u])

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj) // 2

    def is_connected(self) -> bool:
        """Whether the graph is connected (BFS from node 0)."""
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self.n

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self.n):
            raise TopologyError(f"node {u} out of range for n={self.n}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology(n={self.n}, edges={self.edge_count()})"


def full_mesh(n: int) -> Topology:
    """The paper's standard model: a complete graph on ``n`` nodes."""
    topo = Topology(n)
    for u in range(n):
        for v in range(u + 1, n):
            topo.add_edge(u, v)
    return topo


def two_cliques(f: int) -> Topology:
    """The Section 5 counterexample graph.

    Two cliques of ``3f+1`` nodes each (nodes ``0..3f`` and
    ``3f+1..6f+1``), with node ``i`` of the first clique joined to node
    ``i`` of the second.  The graph is ``(3f+1)``-connected, yet the
    Sync protocol cannot stop the cliques' clocks from drifting apart.

    Returns:
        A :class:`Topology` on ``6f+2`` nodes.
    """
    if f < 1:
        raise TopologyError(f"two_cliques needs f >= 1, got f={f}")
    size = 3 * f + 1
    topo = Topology(2 * size)
    for base in (0, size):
        for u in range(base, base + size):
            for v in range(u + 1, base + size):
                topo.add_edge(u, v)
    for i in range(size):
        topo.add_edge(i, size + i)
    return topo


def ring(n: int) -> Topology:
    """A cycle on ``n`` nodes — far below the connectivity the protocol
    needs; used in negative tests."""
    topo = Topology(n)
    for u in range(n):
        topo.add_edge(u, (u + 1) % n)
    return topo


def from_edges(n: int, edges: list[tuple[int, int]]) -> Topology:
    """Build a topology from an explicit undirected edge list."""
    topo = Topology(n)
    for u, v in edges:
        topo.add_edge(u, v)
    return topo


def random_connected(n: int, p: float, rng, min_degree: int = 1,
                     max_tries: int = 200) -> Topology:
    """A connected Erdos-Renyi-style graph with a minimum-degree floor.

    Used by the Section 5 connectivity study (experiment E13): the paper
    conjectures the protocol works when the non-faulty processors form a
    "sufficiently connected" subgraph; this generator produces the
    random test topologies.

    Args:
        n: Number of nodes.
        p: Independent edge probability.
        rng: Random stream (``random.Random``).
        min_degree: Resample until every node has at least this degree.
        max_tries: Give up after this many attempts.

    Raises:
        TopologyError: If no graph satisfying the constraints is found
            (``p`` too small for the requested degree floor).
    """
    for _ in range(max_tries):
        topo = Topology(n)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < p:
                    topo.add_edge(u, v)
        if topo.is_connected() and all(topo.degree(u) >= min_degree
                                       for u in range(n)):
            return topo
    raise TopologyError(
        f"could not sample a connected graph with min degree {min_degree} "
        f"at p={p} after {max_tries} tries"
    )
