"""Compatibility shim: message types moved behind the runtime seam.

:class:`Message`, :class:`Ping`, :class:`Pong`, and :class:`AppPayload`
now live in :mod:`repro.runtime.messages` because they are shared by
every transport (the simulated network and the rt loopback/UDP
transports).  This module re-exports them so existing imports keep
working; new code should import from :mod:`repro.runtime`.
"""

from __future__ import annotations

from repro.runtime.messages import AppPayload, Message, Ping, Pong

__all__ = ["AppPayload", "Message", "Ping", "Pong"]
