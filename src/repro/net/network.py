"""The simulated network: delivery, authentication, failure injection.

Implements the link model of Section 2.2: between non-faulty processors
connected by an (up) link, a message sent at real time ``tau`` is
delivered exactly once at some time in ``(tau, tau + delta]``, carrying
the true sender identity.  The adversary cannot modify messages in
flight (it corrupts *processors*, not links), but link outages can be
injected for robustness experiments beyond the paper's model — a down
link silently drops messages, which the estimation procedure of
Definition 4 tolerates via its timeout.
"""

from __future__ import annotations

import random
from functools import partial
from typing import TYPE_CHECKING, Callable

from repro.errors import ConfigurationError, TopologyError
from repro.net.links import DelayModel
from repro.runtime.messages import Message
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.api import MessageHandler
    from repro.sim.engine import Simulator


class Network:
    """Message fabric connecting node processes over a topology.

    Args:
        sim: The owning simulator.
        topology: Which pairs of nodes may exchange messages.
        delay_model: Per-message delay sampler bounded by ``delta``.

    Attributes:
        messages_sent: Count of send attempts.
        messages_delivered: Count of actual deliveries.
        messages_dropped: Count of drops (down links / missing edges).
        obs: Observability event bus, or ``None`` (the default); set by
            the flight recorder when per-message events are requested.
    """

    def __init__(self, sim: "Simulator", topology: Topology, delay_model: DelayModel,
                 loss_rate: float = 0.0) -> None:
        if not (0.0 <= loss_rate < 1.0):
            raise ConfigurationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.topology = topology
        self.delay_model = delay_model
        self.delta = delay_model.delta
        self.loss_rate = float(loss_rate)
        self._processes: dict[int, "MessageHandler"] = {}
        self._down_links: set[frozenset[int]] = set()
        self._next_msg_id = 0
        # Per-link caches: the edge check, RNG stream, and delivery tag
        # for a directed link never change, so they are resolved once
        # instead of rebuilding a "link:s->r" registry key per message.
        # Stream names are unchanged, so draws stay byte-identical per
        # seed (streams are independent by name, so eagerly creating one
        # for an edge-less pair perturbs nothing).
        self._link_state: dict[tuple[int, int], tuple[bool, random.Random, str]] = {}
        self._loss_rngs: dict[tuple[int, int], random.Random] = {}
        self._taps: list[Callable[[Message], None]] = []
        self.obs = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, process: "MessageHandler") -> None:
        """Attach ``process`` as the handler for its node id.

        Raises:
            ConfigurationError: If the node already has a process or the
                id is outside the topology.
        """
        node = process.node_id
        if not (0 <= node < self.topology.n):
            raise ConfigurationError(f"node {node} outside topology of size {self.topology.n}")
        if node in self._processes:
            raise ConfigurationError(f"node {node} already has a bound process")
        self._processes[node] = process

    def process_for(self, node: int) -> "MessageHandler":
        """Return the process bound to ``node``.

        Raises:
            ConfigurationError: If no process is bound.
        """
        try:
            return self._processes[node]
        except KeyError:
            raise ConfigurationError(f"no process bound to node {node}") from None

    def add_tap(self, tap: Callable[[Message], None]) -> None:
        """Register a callback invoked on every delivered message.

        Taps model the paper's adversary, who "can see (but not modify)
        all the communication in the network"; they are also used by the
        trace recorder.
        """
        self._taps.append(tap)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, sender: int, recipient: int, payload: object) -> None:
        """Send ``payload`` from ``sender`` to ``recipient``.

        Drops silently (counting the drop) when there is no edge or the
        link is down; otherwise schedules delivery within ``delta``.

        Raises:
            ConfigurationError: On a self-send; no counter is mutated on
                this error path.
        """
        if sender == recipient:
            raise ConfigurationError(f"node {sender} attempted to message itself")
        self.messages_sent += 1
        key = (sender, recipient)
        state = self._link_state.get(key)
        if state is None:
            state = (self.topology.has_edge(sender, recipient),
                     self.sim.rngs.stream(f"link:{sender}->{recipient}"),
                     f"deliver:{sender}->{recipient}")
            self._link_state[key] = state
        if not state[0] or (self._down_links and self.link_is_down(sender, recipient)):
            self.messages_dropped += 1
            if self.obs is not None:
                self.obs.publish("net.drop", node=sender, recipient=recipient,
                                 reason="no-edge" if not state[0] else "down-link")
            return
        if self.loss_rate > 0.0:
            # Random loss is outside the paper's link model (Section 2.2
            # links are reliable); it exists for robustness experiments —
            # a lost message surfaces as an estimation timeout.
            key = (sender, recipient)
            loss_rng = self._loss_rngs.get(key)
            if loss_rng is None:
                loss_rng = self.sim.rngs.stream(f"loss:{sender}->{recipient}")
                self._loss_rngs[key] = loss_rng
            if loss_rng.random() < self.loss_rate:
                self.messages_dropped += 1
                if self.obs is not None:
                    self.obs.publish("net.drop", node=sender,
                                     recipient=recipient, reason="loss")
                return
        rng, tag = state[1], state[2]
        delay = self.delay_model.sample(sender, recipient, rng)
        sim = self.sim
        now = sim.now
        msg_id = self._next_msg_id
        self._next_msg_id = msg_id + 1
        message = Message(sender, recipient, payload, now, now + delay, msg_id)
        # Bound method + payload instead of a per-message closure: the
        # partial carries the Message, so no cell objects are built.
        sim.schedule(delay, partial(self._deliver, message), tag=tag)

    def broadcast(self, sender: int, payload: object) -> None:
        """Send ``payload`` to every neighbor of ``sender``."""
        for neighbor in self.topology.neighbors(sender):
            self.send(sender, neighbor, payload)

    def _deliver(self, message: Message) -> None:
        if self.link_is_down(message.sender, message.recipient):
            # Link failed while the message was in flight.
            self.messages_dropped += 1
            if self.obs is not None:
                self.obs.publish("net.drop", node=message.sender,
                                 recipient=message.recipient, reason="in-flight")
            return
        self.messages_delivered += 1
        if self.obs is not None:
            self.obs.publish("net.deliver", node=message.sender,
                             recipient=message.recipient,
                             kind=type(message.payload).__name__,
                             sent_at=message.sent_at)
        for tap in self._taps:
            tap(message)
        handler = self._processes.get(message.recipient)
        if handler is not None:
            handler.deliver(message)

    # ------------------------------------------------------------------
    # Link failure injection (beyond the paper's model)
    # ------------------------------------------------------------------

    def fail_link(self, u: int, v: int) -> None:
        """Mark the link ``{u, v}`` down; messages on it are dropped."""
        if not self.topology.has_edge(u, v):
            raise TopologyError(f"cannot fail non-existent link {{{u}, {v}}}")
        self._down_links.add(frozenset((u, v)))

    def restore_link(self, u: int, v: int) -> None:
        """Mark the link ``{u, v}`` up again (no-op if it was up)."""
        self._down_links.discard(frozenset((u, v)))

    def link_is_down(self, u: int, v: int) -> bool:
        """Whether the link ``{u, v}`` is currently down."""
        down = self._down_links
        if not down:
            return False
        return frozenset((u, v)) in down

    def schedule_outage(self, u: int, v: int, start: float, end: float) -> None:
        """Schedule a link outage over the real-time window ``[start, end]``."""
        if end <= start:
            raise ConfigurationError(f"outage window [{start}, {end}] is empty")
        self.sim.schedule_at(start, lambda: self.fail_link(u, v), tag=f"outage:{u}-{v}")
        self.sim.schedule_at(end, lambda: self.restore_link(u, v), tag=f"restore:{u}-{v}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={self.topology.n}, delta={self.delta}, "
            f"sent={self.messages_sent}, delivered={self.messages_delivered})"
        )
