"""Link delay models.

The paper's network assumption is a single bound ``delta``: a message
between good processors is delivered within ``[tau, tau + delta]``.
*Which* delay inside that bound each message experiences is left to the
environment — and a malicious network can pick delays adversarially to
skew ping/pong estimates (the estimate's error bound ``(R-S)/2`` still
holds, but the actual error is maximized by asymmetric delays).

Each :class:`DelayModel` maps ``(sender, recipient, rng)`` to a delay in
``(0, delta]``.  Models provided:

* :class:`FixedDelay` — every message takes the same time; symmetric
  round trips make ping/pong exact.
* :class:`UniformDelay` — i.i.d. uniform in ``[lo, hi]``.
* :class:`AsymmetricDelay` — direction-dependent fixed delays; the
  classic worst case for round-trip estimation.
* :class:`JitteredDelay` — a base delay plus heavy one-sided jitter,
  modelling congested links; motivates the min-of-k RTT optimization.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError


class DelayModel:
    """Abstract per-message delay chooser, bounded by ``delta``.

    Attributes:
        delta: The paper's message delivery bound; every sampled delay
            is validated against it.
    """

    def __init__(self, delta: float) -> None:
        if delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def sample(self, sender: int, recipient: int, rng: random.Random) -> float:
        """Return the delay for one message from ``sender`` to ``recipient``."""
        raise NotImplementedError

    def _bounded(self, delay: float) -> float:
        if not (0.0 < delay <= self.delta * (1.0 + 1e-12)):
            raise ConfigurationError(
                f"delay model produced {delay}, outside (0, delta={self.delta}]"
            )
        return min(delay, self.delta)


class FixedDelay(DelayModel):
    """Every message takes exactly ``value`` (default ``delta / 2``)."""

    def __init__(self, delta: float, value: float | None = None) -> None:
        super().__init__(delta)
        self.value = self.delta / 2.0 if value is None else float(value)
        self._bounded(self.value)

    def sample(self, sender: int, recipient: int, rng: random.Random) -> float:
        return self.value


class UniformDelay(DelayModel):
    """I.i.d. uniform delay in ``[lo, hi]`` with ``hi <= delta``.

    Defaults to ``[0.1 * delta, delta]``.
    """

    def __init__(self, delta: float, lo: float | None = None, hi: float | None = None) -> None:
        super().__init__(delta)
        self.lo = 0.1 * self.delta if lo is None else float(lo)
        self.hi = self.delta if hi is None else float(hi)
        if not (0.0 < self.lo <= self.hi <= self.delta):
            raise ConfigurationError(
                f"uniform delay range [{self.lo}, {self.hi}] invalid for delta={self.delta}"
            )

    def sample(self, sender: int, recipient: int, rng: random.Random) -> float:
        return self._bounded(rng.uniform(self.lo, self.hi))


class AsymmetricDelay(DelayModel):
    """Direction-dependent fixed delays: worst case for RTT estimation.

    Messages from a lower-numbered to a higher-numbered node take
    ``forward``; the reverse direction takes ``backward``.  With
    ``forward != backward`` a ping/pong estimate is off by
    ``(backward - forward) / 2`` — still within its self-reported error
    bound, but maximally biased.
    """

    def __init__(self, delta: float, forward: float | None = None,
                 backward: float | None = None) -> None:
        super().__init__(delta)
        self.forward = self.delta if forward is None else float(forward)
        self.backward = 0.05 * self.delta if backward is None else float(backward)
        self._bounded(self.forward)
        self._bounded(self.backward)

    def sample(self, sender: int, recipient: int, rng: random.Random) -> float:
        return self.forward if sender < recipient else self.backward


class JitteredDelay(DelayModel):
    """Base delay plus exponential one-sided jitter, truncated at ``delta``.

    Most messages arrive near ``base``; a tail of them arrive late.  The
    min-of-k round-trip optimization (Section 3.1) exists exactly to cut
    through this tail, and experiment E10 measures how well it does.
    """

    def __init__(self, delta: float, base: float | None = None,
                 jitter_mean: float | None = None) -> None:
        super().__init__(delta)
        self.base = 0.1 * self.delta if base is None else float(base)
        self.jitter_mean = 0.3 * self.delta if jitter_mean is None else float(jitter_mean)
        if self.base <= 0 or self.base > self.delta:
            raise ConfigurationError(f"base delay {self.base} invalid for delta={self.delta}")

    def sample(self, sender: int, recipient: int, rng: random.Random) -> float:
        return self._bounded(min(self.delta, self.base + rng.expovariate(1.0 / self.jitter_mean)))


class HeterogeneousDelay(DelayModel):
    """Per-link delay classes: a LAN/WAN mix under one global bound.

    The paper's model has a single ``delta`` for every link; real
    deployments mix fast local links with slow wide-area ones.  This
    model assigns each (unordered) node pair a delay class and keeps
    every sample under the global ``delta``, so the paper's analysis
    still applies with ``epsilon`` driven by the *slowest* links —
    which the heterogeneous-deployment tests measure.

    Args:
        delta: Global delivery bound (the slowest class's ceiling).
        classifier: Maps an unordered pair ``(min_id, max_id)`` to a
            ``(lo, hi)`` uniform delay range; defaults to "same parity =
            fast LAN (5-10% of delta), different parity = slow WAN
            (50-100% of delta)".
    """

    def __init__(self, delta: float, classifier=None) -> None:
        super().__init__(delta)

        def default_classifier(a: int, b: int) -> tuple[float, float]:
            if a % 2 == b % 2:
                return (0.05 * self.delta, 0.10 * self.delta)
            return (0.5 * self.delta, self.delta)

        self.classifier = classifier if classifier is not None else default_classifier

    def sample(self, sender: int, recipient: int, rng: random.Random) -> float:
        lo, hi = self.classifier(min(sender, recipient), max(sender, recipient))
        if not (0.0 < lo <= hi <= self.delta):
            raise ConfigurationError(
                f"classifier returned invalid range ({lo}, {hi}) for "
                f"delta={self.delta}")
        return self._bounded(rng.uniform(lo, hi))


# ----------------------------------------------------------------------
# Delay-model registry and declarative specs
# ----------------------------------------------------------------------

DELAY_MODELS: dict[str, Callable[..., DelayModel]] = {}
"""Named delay-model constructors; each takes ``delta`` first, then
model-specific keyword options (see :func:`register_delay_model`)."""


def register_delay_model(name: str) -> Callable[[Callable[..., DelayModel]],
                                                Callable[..., DelayModel]]:
    """Register a delay-model constructor under ``name`` (decorator)."""

    def decorator(ctor: Callable[..., DelayModel]) -> Callable[..., DelayModel]:
        DELAY_MODELS[name] = ctor
        return ctor

    return decorator


for _name, _ctor in (("fixed", FixedDelay), ("uniform", UniformDelay),
                     ("asymmetric", AsymmetricDelay), ("jittered", JitteredDelay),
                     ("heterogeneous", HeterogeneousDelay)):
    register_delay_model(_name)(_ctor)
del _name, _ctor


@dataclass(frozen=True)
class DelaySpec:
    """Declarative, picklable description of a delay model.

    A spec is a registered model name plus its keyword options (minus
    ``delta``, which comes from the scenario's parameters at build
    time), so scenarios carry *what* delay distribution to use without
    holding a live model object — the piece that lets any scenario
    cross a process boundary.

    Attributes:
        model: Registered model name (a key of :data:`DELAY_MODELS`).
        options: Constructor keyword arguments (e.g. ``lo``/``hi``).
    """

    model: str
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model not in DELAY_MODELS:
            raise ConfigurationError(
                f"unknown delay model {self.model!r}; known: {sorted(DELAY_MODELS)}")

    def build(self, delta: float) -> DelayModel:
        """Instantiate the model under the given delivery bound."""
        try:
            return DELAY_MODELS[self.model](delta, **self.options)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid options for delay model {self.model!r}: {exc}") from None

    def to_config(self) -> dict[str, Any]:
        """The JSON ``delay`` section: ``{"model": ..., **options}``."""
        return {"model": self.model, **self.options}

    @classmethod
    def from_config(cls, spec: dict[str, Any]) -> "DelaySpec":
        """Parse the JSON ``delay`` section.

        Raises:
            ConfigurationError: On a missing or unknown ``model`` key.
        """
        if "model" not in spec:
            raise ConfigurationError(
                f"delay config requires a 'model' key; got {sorted(spec)}")
        options = {key: value for key, value in spec.items() if key != "model"}
        return cls(model=spec["model"], options=options)
