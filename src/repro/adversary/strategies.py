"""Concrete Byzantine strategies.

Each strategy isolates one attack the analysis must survive:

* :class:`SilentStrategy` — crash/napping fault; peers' estimates of the
  victim time out (``a = inf``).
* :class:`RandomClockStrategy` — scrambles the victim's clock on
  break-in and answers pings honestly *from the scrambled clock*; the
  basic recovery workload.
* :class:`LiarStrategy` — answers every ping with a constant enormous
  offset; breaks unprotected averaging, bounced off by order-statistic
  selection.
* :class:`NoisyStrategy` — answers each ping with independent random
  values; the chaos-monkey fault.
* :class:`TwoFacedStrategy` — tells low-numbered peers a low clock and
  high-numbered peers a high clock; the classic Byzantine split attack.
* :class:`SplitWorldStrategy` — omniscient variant: pushes each
  *recipient* outward from the current median, the strongest spreading
  attack we know against convergence averaging; used to probe how tight
  the Theorem 5(i) bound is.
* :class:`NearBoundaryResetStrategy` — on leave, plants the victim's
  clock "just a bit outside the permitted range" (the hard recovery
  case the paper calls out in Section 1.1 against [10]).
* :class:`StealthDriftStrategy` — answers with a slowly growing skew,
  staying plausible while trying to drag the cluster.

Strategies answer pings by sending a
:class:`~repro.runtime.messages.Pong` with whatever ``clock_value`` the
attack calls for; non-ping traffic is dropped unless a strategy chooses
otherwise.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable

from repro.adversary.base import ByzantineStrategy
from repro.errors import ConfigurationError
from repro.runtime.messages import Message, Ping, Pong

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock
    from repro.core.params import ProtocolParams
    from repro.runtime.process import Process


def _reply(process: "Process", message: Message, clock_value: float) -> None:
    """Send a pong as the victim, reporting ``clock_value``."""
    ping = message.payload
    assert isinstance(ping, Ping)
    process.send(message.sender, Pong(nonce=ping.nonce, clock_value=clock_value))


class SilentStrategy(ByzantineStrategy):
    """Drop all traffic: a crash (napping) fault."""

    name = "silent"


class RandomClockStrategy(ByzantineStrategy):
    """Scramble the victim's clock on break-in; then answer honestly.

    The scrambled clock persists after release, so this is the canonical
    recovery workload: the node must pull itself back via Sync alone.

    Args:
        spread: The reset offset is uniform in ``[-spread, spread]``.
        answer_pings: Whether to keep answering pings (from the bad
            clock) while controlled; if False the node is also silent.
    """

    name = "random-clock"

    def __init__(self, spread: float, answer_pings: bool = True) -> None:
        self.spread = float(spread)
        self.answer_pings = answer_pings

    def on_break_in(self, process: "Process", rng: random.Random) -> None:
        offset = rng.uniform(-self.spread, self.spread)
        process.clock.hijack_set(process.real_now(), process.clock.adj + offset)

    def on_message(self, process: "Process", message: Message,
                   rng: random.Random) -> None:
        if self.answer_pings and isinstance(message.payload, Ping):
            _reply(process, message, process.local_now())


class LiarStrategy(ByzantineStrategy):
    """Answer every ping with ``own clock + offset`` (constant big lie).

    Args:
        offset: The lie magnitude; sign included.
    """

    name = "liar"

    def __init__(self, offset: float) -> None:
        self.offset = float(offset)

    def on_message(self, process: "Process", message: Message,
                   rng: random.Random) -> None:
        if isinstance(message.payload, Ping):
            _reply(process, message, process.local_now() + self.offset)


class NoisyStrategy(ByzantineStrategy):
    """Answer each ping with an independent uniform random clock value.

    Args:
        spread: Replies are ``own clock + U[-spread, spread]``, fresh
            per message.
    """

    name = "noisy"

    def __init__(self, spread: float) -> None:
        self.spread = float(spread)

    def on_message(self, process: "Process", message: Message,
                   rng: random.Random) -> None:
        if isinstance(message.payload, Ping):
            _reply(process, message,
                   process.local_now() + rng.uniform(-self.spread, self.spread))


class TwoFacedStrategy(ByzantineStrategy):
    """Report a low clock to one half of the peers, high to the other.

    Args:
        magnitude: Size of each face's offset.
        split: Predicate deciding which face a recipient sees; defaults
            to parity of the node id.
    """

    name = "two-faced"

    def __init__(self, magnitude: float,
                 split: Callable[[int], bool] | None = None) -> None:
        self.magnitude = float(magnitude)
        self.split = split if split is not None else (lambda node: node % 2 == 0)

    def on_message(self, process: "Process", message: Message,
                   rng: random.Random) -> None:
        if isinstance(message.payload, Ping):
            sign = -1.0 if self.split(message.sender) else 1.0
            _reply(process, message, process.local_now() + sign * self.magnitude)


class SplitWorldStrategy(ByzantineStrategy):
    """Omniscient spread-maximizing attack.

    Knows every clock (a strictly stronger adversary than the paper's,
    which sees only traffic and broken-into state — using it makes our
    empirical bounds conservative).  Each recipient is told a value
    pushing it *away* from the current median of the given clocks: a
    recipient already below the median is told an extremely low clock,
    one above is told an extremely high clock.

    Args:
        clocks: Registry of all logical clocks (by node id).
        push: Magnitude of the reported offset.
    """

    name = "split-world"
    needs_clocks = True

    def __init__(self, clocks: dict[int, "LogicalClock"], push: float) -> None:
        self.clocks = clocks
        self.push = float(push)

    def on_message(self, process: "Process", message: Message,
                   rng: random.Random) -> None:
        if not isinstance(message.payload, Ping):
            return
        tau = process.real_now()
        values = sorted(clock.read(tau) for clock in self.clocks.values())
        median = values[len(values) // 2]
        recipient_clock = self.clocks[message.sender].read(tau)
        sign = -1.0 if recipient_clock <= median else 1.0
        _reply(process, message, recipient_clock + sign * self.push)


class NearBoundaryResetStrategy(ByzantineStrategy):
    """On leave, plant the clock just outside (or inside) a boundary.

    The paper highlights (Section 1.1, discussing [10]) that a
    recovering processor "may have its clock set to a value 'just a
    bit' outside the permitted range" — the case fault-detection-based
    protocols stumble on.  This strategy is silent while in control and
    performs exactly that reset at release time.

    Args:
        offset: Added to the victim's *current* clock at release; pick
            ``±(WayOff * (1 ± eps))`` to probe both sides of the
            Figure 1 threshold.
    """

    name = "near-boundary-reset"

    def __init__(self, offset: float) -> None:
        self.offset = float(offset)

    def on_leave(self, process: "Process", rng: random.Random) -> None:
        process.clock.hijack_set(process.real_now(), process.clock.adj + self.offset)


class StealthDriftStrategy(ByzantineStrategy):
    """Report a skew that grows linearly while control lasts.

    Stays under any single-shot plausibility radar; tests that the
    order-statistic selection (not outlier rejection) is what protects
    the good clocks.

    Args:
        rate: Skew growth in clock units per real-time second.
    """

    name = "stealth-drift"

    def __init__(self, rate: float) -> None:
        self.rate = float(rate)
        self._since: float | None = None

    def on_break_in(self, process: "Process", rng: random.Random) -> None:
        self._since = process.real_now()

    def on_message(self, process: "Process", message: Message,
                   rng: random.Random) -> None:
        if isinstance(message.payload, Ping) and self._since is not None:
            skew = self.rate * (process.real_now() - self._since)
            _reply(process, message, process.local_now() + skew)

    def on_leave(self, process: "Process", rng: random.Random) -> None:
        self._since = None


class ReplayStrategy(ByzantineStrategy):
    """Replay old messages (the footnote-3 caveat, weaponized).

    The paper notes its link formulation "does not completely rule out
    replay of old messages" but that "this does not pause a problem for
    our application".  This strategy tests that claim: while in control
    it records every pong delivered to the victim and answers pings
    honestly (staying stealthy); on leaving, it sprays the recorded
    stale pongs — old nonces, old clock values — at every peer, and
    also replays them back mixed with fresh answers while in control.
    Session-scoped nonces make every replayed message a no-op, which is
    exactly what the tests assert.

    Args:
        replay_batch: Maximum recorded pongs replayed per occasion.
    """

    name = "replay"

    def __init__(self, replay_batch: int = 50) -> None:
        self.replay_batch = replay_batch
        self._recorded: list[Pong] = []

    def on_message(self, process: "Process", message: Message,
                   rng: random.Random) -> None:
        payload = message.payload
        if isinstance(payload, Pong):
            self._recorded.append(payload)
            return
        if isinstance(payload, Ping):
            # Stealth: answer honestly, then bury the answer in replays.
            _reply(process, message, process.local_now())
            for stale in self._recorded[-self.replay_batch:]:
                process.send(message.sender, stale)

    def on_leave(self, process: "Process", rng: random.Random) -> None:
        for peer in process.neighbors():
            for stale in self._recorded[-self.replay_batch:]:
                process.send(peer, stale)
        self._recorded.clear()


class MalformedStrategy(ByzantineStrategy):
    """Answer pings with non-finite clock values (NaN / +-inf).

    A pure implementation-level attack: the paper's model lets the
    adversary send arbitrary *values*, and nothing about IEEE floats is
    in scope of the analysis — but a real implementation that feeds NaN
    into its order-statistic sort gets adversary-steerable selection
    (NaN's position under sorting depends on input order).  The
    estimation layer must therefore reject non-finite clock fields at
    the trust boundary; this strategy exists so tests can prove it does.

    Args:
        flavor: ``"nan"``, ``"inf"``, or ``"-inf"``; ``"mix"`` cycles
            through all three.
    """

    name = "malformed"

    _FLAVORS = {"nan": float("nan"), "inf": float("inf"),
                "-inf": float("-inf")}

    def __init__(self, flavor: str = "mix") -> None:
        if flavor not in (*self._FLAVORS, "mix"):
            raise ValueError(f"unknown flavor {flavor!r}")
        self.flavor = flavor
        self._cycle = 0

    def on_message(self, process: "Process", message: Message,
                   rng: random.Random) -> None:
        if not isinstance(message.payload, Ping):
            return
        if self.flavor == "mix":
            value = list(self._FLAVORS.values())[self._cycle % 3]
            self._cycle += 1
        else:
            value = self._FLAVORS[self.flavor]
        _reply(process, message, value)


# ----------------------------------------------------------------------
# Strategy registries (the declarative-plan vocabulary)
# ----------------------------------------------------------------------

StrategyFactory = Callable[[int, int], ByzantineStrategy]
"""Maps ``(node, episode_index)`` to a fresh strategy instance."""


STRATEGIES: dict[str, type[ByzantineStrategy]] = {}
"""Registered strategy classes by their ``name`` attribute."""

STRATEGY_FACTORIES: dict[str, Callable[..., StrategyFactory]] = {}
"""Named per-(node, episode) factory builders.

Each entry is called as ``builder(params, seed, clocks, **kwargs)`` and
returns a :data:`StrategyFactory`; they cover rotations that vary the
strategy per victim or episode, which a single strategy name cannot
express."""


def register_strategy(cls: type[ByzantineStrategy]) -> type[ByzantineStrategy]:
    """Register a strategy class under its ``name`` attribute (decorator)."""
    STRATEGIES[cls.name] = cls
    return cls


def register_strategy_factory(name: str) -> Callable[[Callable[..., StrategyFactory]],
                                                     Callable[..., StrategyFactory]]:
    """Register a strategy-factory builder under ``name`` (decorator)."""

    def decorator(builder: Callable[..., StrategyFactory]) -> Callable[..., StrategyFactory]:
        STRATEGY_FACTORIES[name] = builder
        return builder

    return decorator


for _cls in (SilentStrategy, RandomClockStrategy, LiarStrategy, NoisyStrategy,
             TwoFacedStrategy, SplitWorldStrategy, NearBoundaryResetStrategy,
             StealthDriftStrategy, ReplayStrategy, MalformedStrategy):
    register_strategy(_cls)
del _cls


def build_strategy_factory(name: str, kwargs: dict, *, params: "ProtocolParams",
                           seed: int, clocks: dict[int, "LogicalClock"] | None
                           ) -> StrategyFactory:
    """Resolve a strategy or factory name into a :data:`StrategyFactory`.

    Factory names (:data:`STRATEGY_FACTORIES`) win over plain strategy
    names; a plain strategy name yields a fixed factory constructing
    ``STRATEGIES[name](**kwargs)`` per episode, with the clock registry
    injected first for omniscient strategies (``needs_clocks``).

    Raises:
        ConfigurationError: On unknown names or options the constructor
            rejects (validated eagerly with a probe instance).
    """
    if name in STRATEGY_FACTORIES:
        try:
            return STRATEGY_FACTORIES[name](params, seed, clocks, **kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid options for strategy factory {name!r}: {exc}") from None
    if name in STRATEGIES:
        cls = STRATEGIES[name]
        frozen = dict(kwargs)

        def fixed_factory(node: int, episode: int) -> ByzantineStrategy:
            if cls.needs_clocks:
                return cls(clocks, **frozen)
            return cls(**frozen)

        try:
            fixed_factory(0, 0)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"invalid options for strategy {name!r}: {exc}") from None
        return fixed_factory
    raise ConfigurationError(
        f"unknown strategy {name!r}; known strategies: {sorted(STRATEGIES)}, "
        f"factories: {sorted(STRATEGY_FACTORIES)}")


def standard_strategy_mix(params: "ProtocolParams", seed: int = 0) -> "_MixFactory":
    """The default rotation of attack strategies for mobile workloads.

    Cycles deterministically (per node, episode) through: clock
    scrambling, silence, constant lies, per-message noise, two-faced
    answers, and near-boundary parting resets.  Magnitudes are scaled
    off ``WayOff`` so every attack is in the regime the analysis cares
    about.
    """
    return _MixFactory(params, seed)


class _MixFactory:
    """Deterministic (node, episode) -> strategy rotation."""

    def __init__(self, params: "ProtocolParams", seed: int) -> None:
        self.params = params
        self.rng = random.Random(seed ^ 0x5DEECE66D)

    def __call__(self, node: int, episode: int) -> ByzantineStrategy:
        way_off = self.params.way_off
        choices = (
            lambda: RandomClockStrategy(spread=4.0 * way_off),
            lambda: SilentStrategy(),
            lambda: LiarStrategy(offset=100.0 * way_off),
            lambda: NoisyStrategy(spread=10.0 * way_off),
            lambda: TwoFacedStrategy(magnitude=5.0 * way_off),
            lambda: NearBoundaryResetStrategy(offset=1.05 * way_off),
        )
        return choices[(node + episode) % len(choices)]()


@register_strategy_factory("standard-mix")
def _standard_mix_builder(params: "ProtocolParams", seed: int,
                          clocks: dict[int, "LogicalClock"] | None) -> StrategyFactory:
    """The :func:`standard_strategy_mix` rotation, seeded per scenario."""
    return standard_strategy_mix(params, seed)


@register_strategy_factory("alternating-reset")
def _alternating_reset_builder(params: "ProtocolParams", seed: int,
                               clocks: dict[int, "LogicalClock"] | None,
                               offset: float) -> StrategyFactory:
    """Near-boundary resets with per-node alternating sign.

    Even-numbered victims are displaced by ``+offset``, odd-numbered by
    ``-offset`` — the recovery workload where victims scatter to both
    sides of the Figure 1 threshold.
    """

    def factory(node: int, episode: int) -> ByzantineStrategy:
        return NearBoundaryResetStrategy(
            offset=offset * (1 if node % 2 == 0 else -1))

    return factory
