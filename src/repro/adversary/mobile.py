"""The mobile adversary: f-limited corruption scheduling (Definition 2).

A corruption *plan* is a list of :class:`PlannedCorruption` entries —
who gets broken into, when, for how long, running which Byzantine
strategy.  :func:`audit_f_limited` verifies Definition 2 exactly: over
every window ``[tau, tau + PI]`` at most ``f`` distinct processors are
controlled at some point of the window.  The audit runs at installation
time so no experiment can accidentally exceed the model (and the E7
resilience experiment *deliberately* bypasses it via ``enforce=False``).

:class:`MobileAdversary` executes a plan against a running simulation:
at each break-in it seizes the victim's process (killing its timers and
routing its traffic to the strategy), and at each release it lets the
strategy take its parting shot before the protocol's recovery logic
restarts.

Plan generators cover the standard workloads:

* :func:`rotating_plan` — the canonical proactive-security threat: the
  adversary owns ``f`` processors at a time and hops groups forever,
  eventually corrupting *every* processor (unbounded total faults).
* :func:`single_burst_plan` — one corruption episode, for focused
  recovery measurements.
* :func:`round_robin_plan` — one node at a time, maximum hop rate.
* :func:`random_plan` — randomized victims/dwells/gaps, f-limited by
  construction; the fuzzing workload.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.adversary.base import ByzantineStrategy
from repro.errors import AdversaryError
from repro.metrics.sampler import CorruptionInterval
from repro.metrics.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.network import Network
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class PlannedCorruption:
    """One scheduled occupation of one node.

    Attributes:
        node: Victim processor.
        start: Break-in real time.
        end: Release real time (``math.inf`` = never released).
        strategy: Behaviour while controlled.
    """

    node: int
    start: float
    end: float
    strategy: ByzantineStrategy

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise AdversaryError(
                f"corruption of node {self.node} has empty interval "
                f"[{self.start}, {self.end}]"
            )

    def interval(self) -> CorruptionInterval:
        """The metrics-facing (node, start, end) record."""
        return CorruptionInterval(self.node, self.start, self.end)


def audit_f_limited(plan: Sequence[PlannedCorruption], f: int, pi: float) -> None:
    """Verify Definition 2: at most ``f`` nodes controlled per PI-window.

    A node counts toward window ``[tau, tau + PI]`` iff one of its
    corruption intervals intersects it, i.e. iff
    ``tau in [start - PI, end]``.  Per node we union those inflated
    intervals, then sweep all nodes' unions counting overlap.

    Raises:
        AdversaryError: Naming a witness time where the count exceeds
            ``f``.
    """
    if pi <= 0:
        raise AdversaryError(f"PI must be positive, got {pi}")
    per_node: dict[int, list[tuple[float, float]]] = {}
    for corruption in plan:
        inflated = (corruption.start - pi, corruption.end)
        per_node.setdefault(corruption.node, []).append(inflated)

    events: list[tuple[float, int]] = []
    for intervals in per_node.values():
        intervals.sort()
        merged: list[tuple[float, float]] = []
        for lo, hi in intervals:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        for lo, hi in merged:
            events.append((lo, +1))
            events.append((hi, -1))

    # Closed intervals: at equal times, +1 before -1 so touching
    # intervals count as simultaneous (the conservative reading).
    events.sort(key=lambda item: (item[0], -item[1]))
    active = 0
    for time, delta in events:
        active += delta
        if active > f:
            raise AdversaryError(
                f"plan is not {f}-limited: window starting at tau={time:.6g} "
                f"touches {active} corrupted processors (PI={pi})"
            )


class MobileAdversary:
    """Executes a corruption plan against a running simulation.

    Args:
        sim: The simulator.
        network: Used to look up victim processes.
        plan: The corruption schedule.
        f: Fault bound for the Definition 2 audit.
        pi: Time period for the audit.
        trace: Optional recorder for break-in/release events.
        enforce: When True (default), audit the plan at install time;
            E7 sets False to study over-powerful adversaries.

    Attributes:
        plan: The (immutable) corruption schedule.
        obs: Observability event bus, or ``None`` (the default) when no
            flight recorder is attached.
    """

    def __init__(self, sim: "Simulator", network: "Network",
                 plan: Sequence[PlannedCorruption], f: int, pi: float,
                 trace: TraceRecorder | None = None, enforce: bool = True) -> None:
        self.sim = sim
        self.network = network
        self.plan = list(plan)
        self.f = f
        self.pi = pi
        self.trace = trace
        self.obs = None
        if enforce:
            audit_f_limited(self.plan, f, pi)
        self._rng = sim.rngs.stream("adversary")
        self._active: dict[int, ByzantineStrategy] = {}

    # ------------------------------------------------------------------

    def install(self) -> None:
        """Schedule every break-in and release on the simulator."""
        for corruption in self.plan:
            self.sim.schedule_at(
                corruption.start,
                lambda c=corruption: self._break_in(c),
                tag=f"break-in:n{corruption.node}",
            )
            if math.isfinite(corruption.end):
                self.sim.schedule_at(
                    corruption.end,
                    lambda c=corruption: self._leave(c),
                    tag=f"leave:n{corruption.node}",
                )

    def corruption_intervals(self) -> list[CorruptionInterval]:
        """The plan as metrics-facing intervals (for good-set tracking)."""
        return [c.interval() for c in self.plan]

    # ------------------------------------------------------------------

    def _break_in(self, corruption: PlannedCorruption) -> None:
        node = corruption.node
        if node in self._active:
            raise AdversaryError(f"node {node} is already controlled at break-in")
        process = self.network.process_for(node)
        strategy = corruption.strategy
        self._active[node] = strategy
        if self.obs is not None:
            # Published before the seize so probes mark the node bad
            # before the strategy scrambles its clock.
            self.obs.publish("adv.break_in", node=node, strategy=strategy.name)
        process.seize(_StrategyShim(strategy, self._rng))
        strategy.on_break_in(process, self._rng)
        if self.trace is not None:
            self.trace.on_corruption(node, self.sim.now, "break_in", strategy.name)

    def _leave(self, corruption: PlannedCorruption) -> None:
        node = corruption.node
        strategy = self._active.pop(node, None)
        if strategy is None:
            raise AdversaryError(f"release of node {node} that is not controlled")
        process = self.network.process_for(node)
        strategy.on_leave(process, self._rng)
        process.release()
        if self.obs is not None:
            # Published after the release: the parting shot in on_leave
            # still happens while the node counts as controlled.
            self.obs.publish("adv.release", node=node, strategy=strategy.name)
        if self.trace is not None:
            self.trace.on_corruption(node, self.sim.now, "release", strategy.name)


class _StrategyShim:
    """Adapter giving :class:`~repro.runtime.process.Process.deliver` the
    controller interface (``on_message(process, message)``) while
    injecting the adversary's random stream."""

    def __init__(self, strategy: ByzantineStrategy, rng: random.Random) -> None:
        self.strategy = strategy
        self.rng = rng

    def on_message(self, process, message) -> None:
        self.strategy.on_message(process, message, self.rng)


# ----------------------------------------------------------------------
# Plan generators
# ----------------------------------------------------------------------

StrategyFactory = Callable[[int, int], ByzantineStrategy]
"""Maps ``(node, episode_index)`` to a fresh strategy instance."""


def rotating_plan(n: int, f: int, pi: float, duration: float,
                  strategy_factory: StrategyFactory, dwell: float | None = None,
                  margin: float | None = None,
                  first_start: float = 0.0) -> list[PlannedCorruption]:
    """Corrupt ``f`` nodes at a time, rotating through all ``n`` forever.

    Episode ``i`` controls nodes ``{(i*f + j) % n}`` during
    ``[s_i, s_i + dwell]`` with ``s_{i+1} = s_i + dwell + PI + margin``:
    consecutive episodes are separated by more than ``PI``, so no
    PI-window touches two episodes and the plan is exactly f-limited.
    Over a long run every node is corrupted unboundedly often — the
    workload previous non-recovering protocols cannot survive.

    Args:
        n: Number of processors.
        f: Nodes controlled per episode.
        pi: Adversary period.
        duration: Generate episodes starting before this time.
        strategy_factory: Builds the strategy for each (node, episode).
        dwell: Occupation length per episode; defaults to ``pi``.
        margin: Extra separation beyond ``PI``; defaults to ``pi / 100``.
        first_start: Start time of episode 0.
    """
    if dwell is None:
        dwell = pi
    if margin is None:
        margin = pi / 100.0
    if dwell <= 0 or margin <= 0:
        raise AdversaryError(f"dwell and margin must be positive, got {dwell}, {margin}")
    plan: list[PlannedCorruption] = []
    episode = 0
    start = first_start
    while start < duration:
        for j in range(f):
            node = (episode * f + j) % n
            plan.append(PlannedCorruption(
                node=node, start=start, end=start + dwell,
                strategy=strategy_factory(node, episode),
            ))
        episode += 1
        start += dwell + pi + margin
    return plan


def single_burst_plan(nodes: Sequence[int], start: float, dwell: float,
                      strategy_factory: StrategyFactory) -> list[PlannedCorruption]:
    """One simultaneous corruption episode on ``nodes``."""
    return [
        PlannedCorruption(node=node, start=start, end=start + dwell,
                          strategy=strategy_factory(node, 0))
        for node in nodes
    ]


def round_robin_plan(n: int, pi: float, duration: float,
                     strategy_factory: StrategyFactory, dwell: float | None = None,
                     margin: float | None = None) -> list[PlannedCorruption]:
    """One node at a time, hopping as fast as Definition 2 allows."""
    return rotating_plan(n=n, f=1, pi=pi, duration=duration,
                         strategy_factory=strategy_factory, dwell=dwell,
                         margin=margin)


def random_plan(n: int, f: int, pi: float, duration: float,
                strategy_factory: StrategyFactory, rng: random.Random,
                intensity: float = 0.7) -> list[PlannedCorruption]:
    """A randomized f-limited plan (for fuzzing and soak tests).

    Episodes have random victim subsets (size 1..f), random dwells, and
    random inter-episode gaps of at least ``PI`` plus jitter — so every
    generated plan passes :func:`audit_f_limited` by construction,
    which the property tests verify against the brute-force checker.

    Args:
        n: Number of processors.
        f: Fault bound.
        pi: Adversary period.
        duration: Generate episodes starting before this time.
        strategy_factory: Builds each victim's strategy.
        rng: Randomness source (deterministic per stream).
        intensity: Scales dwell lengths (0 = instant visits, 1 = dwells
            up to a full period).
    """
    if not (0.0 < intensity <= 1.0):
        raise AdversaryError(f"intensity must be in (0, 1], got {intensity}")
    plan: list[PlannedCorruption] = []
    start = rng.uniform(0.0, pi)
    episode = 0
    while start < duration:
        group_size = rng.randint(1, f)
        victims = rng.sample(range(n), group_size)
        dwell = rng.uniform(0.1, 1.0) * intensity * pi
        for node in victims:
            plan.append(PlannedCorruption(
                node=node, start=start, end=start + dwell,
                strategy=strategy_factory(node, episode)))
        episode += 1
        start += dwell + pi * (1.0 + rng.uniform(0.05, 0.5))
    return plan
