"""Declarative adversary plans: picklable specs for corruption schedules.

The plan generators in :mod:`repro.adversary.mobile` take strategy
*factories* — closures that don't cross process boundaries and can't be
written in a JSON config.  A :class:`PlanSpec` is the declarative
counterpart: a plan kind (``rotating``, ``single-burst``, ...), a
:class:`StrategySpec` naming the per-victim behaviour, and plain-data
options.  Specs pickle, round-trip through JSON, and build the exact
same :class:`~repro.adversary.mobile.PlannedCorruption` lists the old
closures did — which is what lets *any* scenario fan out over a process
pool, not just the four canned config scenarios.

A ``PlanSpec`` is itself callable with the ``(scenario, clocks)``
plan-builder signature, so it drops into ``Scenario.plan_builder``
unchanged.
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.adversary.mobile import (
    PlannedCorruption,
    random_plan,
    rotating_plan,
    round_robin_plan,
    single_burst_plan,
)
from repro.adversary.strategies import (
    STRATEGIES,
    STRATEGY_FACTORIES,
    StrategyFactory,
    build_strategy_factory,
)
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.clocks.logical import LogicalClock
    from repro.core.params import ProtocolParams
    from repro.runner.scenario import Scenario


SOAK_RNG_SALT = 0x50AC
"""Seed salt for the ``random`` plan kind's private stream (kept apart
from the simulation's root seed so plan shape and run randomness are
independent)."""


@dataclass(frozen=True)
class PlanContext:
    """Everything a plan builder may consult at build time.

    Attributes:
        params: The scenario's protocol parameterization.
        seed: The scenario's root seed (factories derive their own
            streams from it).
        duration: Real-time length of the run (plans stop before it).
        clocks: The logical clock registry, for omniscient strategies;
            ``None`` during validation-only builds.
    """

    params: "ProtocolParams"
    seed: int
    duration: float
    clocks: dict[int, "LogicalClock"] | None = None


@dataclass(frozen=True)
class StrategySpec:
    """A named strategy (or strategy factory) plus its options.

    ``name`` may be a registered strategy class name (``"liar"``,
    ``"silent"``, ...) — built fresh per episode with ``kwargs`` — or a
    registered factory name (``"standard-mix"``, ``"alternating-reset"``)
    for rotations that vary per (node, episode).

    Attributes:
        name: Key of ``STRATEGIES`` or ``STRATEGY_FACTORIES``.
        kwargs: Constructor / factory-builder keyword options.
    """

    name: str
    kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in STRATEGIES and self.name not in STRATEGY_FACTORIES:
            raise ConfigurationError(
                f"unknown strategy {self.name!r}; known strategies: "
                f"{sorted(STRATEGIES)}, factories: {sorted(STRATEGY_FACTORIES)}")

    def resolve(self, ctx: PlanContext) -> StrategyFactory:
        """Build the ``(node, episode) -> strategy`` factory."""
        return build_strategy_factory(self.name, self.kwargs, params=ctx.params,
                                      seed=ctx.seed, clocks=ctx.clocks)

    def to_config(self) -> dict[str, Any]:
        """The JSON form: ``{"name": ..., **kwargs}``."""
        return {"name": self.name, **self.kwargs}

    @classmethod
    def from_config(cls, spec: dict[str, Any]) -> "StrategySpec":
        """Parse the JSON ``strategy`` section.

        Raises:
            ConfigurationError: On a missing ``name`` key or an unknown
                strategy.
        """
        if not isinstance(spec, dict) or "name" not in spec:
            raise ConfigurationError(
                "plan strategy config requires a 'name' key; got "
                f"{sorted(spec) if isinstance(spec, dict) else type(spec).__name__}")
        kwargs = {key: value for key, value in spec.items() if key != "name"}
        return cls(name=spec["name"], kwargs=kwargs)


PlanKind = Callable[..., "Sequence[PlannedCorruption]"]

PLAN_KINDS: dict[str, PlanKind] = {}
"""Registered plan kinds; each is called as ``kind(ctx,
strategy_factory, **options)`` with keyword-only options."""


def register_plan_kind(name: str) -> Callable[[PlanKind], PlanKind]:
    """Register a plan-kind builder under ``name`` (decorator)."""

    def decorator(builder: PlanKind) -> PlanKind:
        PLAN_KINDS[name] = builder
        return builder

    return decorator


def _keyword_options(builder: PlanKind) -> set[str]:
    return {p.name for p in inspect.signature(builder).parameters.values()
            if p.kind == p.KEYWORD_ONLY}


@dataclass(frozen=True)
class PlanSpec:
    """Declarative, picklable adversary plan.

    Attributes:
        kind: Registered plan kind (a key of :data:`PLAN_KINDS`).
        strategy: What each victim does while controlled.
        options: Keyword options of the plan kind (e.g. ``first_start``
            for ``rotating``; ``victims``/``start``/``dwell`` for
            ``single-burst``).  Validated eagerly against the kind's
            signature so a typo fails at parse time, not mid-campaign.
    """

    kind: str
    strategy: StrategySpec
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in PLAN_KINDS:
            raise ConfigurationError(
                f"unknown plan kind {self.kind!r}; known: {sorted(PLAN_KINDS)}")
        known = _keyword_options(PLAN_KINDS[self.kind])
        unknown = set(self.options) - known
        if unknown:
            raise ConfigurationError(
                f"unknown options {sorted(unknown)} for plan kind "
                f"{self.kind!r}; known: {sorted(known)}")

    def build(self, ctx: PlanContext) -> "Sequence[PlannedCorruption]":
        """Materialize the corruption schedule for one run."""
        factory = self.strategy.resolve(ctx)
        try:
            return PLAN_KINDS[self.kind](ctx, factory, **self.options)
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid options for plan kind {self.kind!r}: {exc}") from None

    def __call__(self, scenario: "Scenario",
                 clocks: dict[int, "LogicalClock"]) -> "Sequence[PlannedCorruption]":
        """The ``Scenario.plan_builder`` calling convention."""
        ctx = PlanContext(params=scenario.params, seed=scenario.seed,
                          duration=scenario.duration, clocks=clocks)
        return self.build(ctx)

    def to_config(self) -> dict[str, Any]:
        """The JSON ``plan`` section:
        ``{"kind": ..., "strategy": {...}, **options}``."""
        return {"kind": self.kind, "strategy": self.strategy.to_config(),
                **self.options}

    @classmethod
    def from_config(cls, spec: dict[str, Any]) -> "PlanSpec":
        """Parse the JSON ``plan`` section.

        Raises:
            ConfigurationError: On missing ``kind``/``strategy`` keys,
                unknown names, or options the kind does not accept.
        """
        if not isinstance(spec, dict) or "kind" not in spec:
            raise ConfigurationError(
                "plan config requires a 'kind' key; got "
                f"{sorted(spec) if isinstance(spec, dict) else type(spec).__name__}")
        if "strategy" not in spec:
            raise ConfigurationError(
                f"plan config requires a 'strategy' section; got {sorted(spec)}")
        options = {key: value for key, value in spec.items()
                   if key not in ("kind", "strategy")}
        return cls(kind=spec["kind"],
                   strategy=StrategySpec.from_config(spec["strategy"]),
                   options=options)


# ----------------------------------------------------------------------
# Plan kinds (thin shims over the mobile.py generators)
# ----------------------------------------------------------------------


@register_plan_kind("rotating")
def _rotating(ctx: PlanContext, strategy_factory: StrategyFactory, *,
              dwell: float | None = None, margin: float | None = None,
              first_start: float = 0.0) -> "Sequence[PlannedCorruption]":
    """f nodes at a time, hopping groups forever (the headline threat)."""
    return rotating_plan(n=ctx.params.n, f=ctx.params.f, pi=ctx.params.pi,
                         duration=ctx.duration, strategy_factory=strategy_factory,
                         dwell=dwell, margin=margin, first_start=first_start)


@register_plan_kind("single-burst")
def _single_burst(ctx: PlanContext, strategy_factory: StrategyFactory, *,
                  victims: Sequence[int], start: float,
                  dwell: float) -> "Sequence[PlannedCorruption]":
    """One simultaneous corruption episode (focused recovery workload)."""
    return single_burst_plan(list(victims), start=start, dwell=dwell,
                             strategy_factory=strategy_factory)


@register_plan_kind("round-robin")
def _round_robin(ctx: PlanContext, strategy_factory: StrategyFactory, *,
                 dwell: float | None = None,
                 margin: float | None = None) -> "Sequence[PlannedCorruption]":
    """One node at a time, hopping as fast as Definition 2 allows."""
    return round_robin_plan(n=ctx.params.n, pi=ctx.params.pi, duration=ctx.duration,
                            strategy_factory=strategy_factory, dwell=dwell,
                            margin=margin)


@register_plan_kind("random")
def _random(ctx: PlanContext, strategy_factory: StrategyFactory, *,
            rng_seed: int | None = None,
            intensity: float = 0.7) -> "Sequence[PlannedCorruption]":
    """Randomized f-limited fuzzing plan on a private salted stream."""
    seed = (ctx.seed ^ SOAK_RNG_SALT) if rng_seed is None else rng_seed
    return random_plan(n=ctx.params.n, f=ctx.params.f, pi=ctx.params.pi,
                       duration=ctx.duration, strategy_factory=strategy_factory,
                       rng=random.Random(seed), intensity=intensity)
