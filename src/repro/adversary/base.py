"""Adversary primitives: the Byzantine strategy interface.

The paper's adversary (Section 2.2) can, while controlling a processor
``p``: read ``p``'s internal state, modify it (including the adjustment
variable ``adj_p``), and send messages *as* ``p``.  It can also observe
all network traffic.  It cannot modify messages between good
processors, and loses all access to ``p`` once it leaves.

A :class:`ByzantineStrategy` encodes one behaviour of a controlled
processor.  The :class:`~repro.adversary.mobile.MobileAdversary`
schedules break-ins and releases per an f-limited plan and routes the
victim's message traffic to the strategy while control lasts.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.messages import Message
    from repro.runtime.process import Process


class ByzantineStrategy:
    """One behaviour for a controlled processor.

    Subclasses override any of the three hooks.  The ``process`` handed
    to the hooks is the *victim's* process object: strategies send
    messages via ``process.send`` (authenticated as the victim), read
    and overwrite its clock via ``process.clock``, and can consult
    ``process.real_now()`` for time (randomness comes from the ``rng``
    each hook receives).

    Attributes:
        name: Strategy label recorded in corruption traces.
        needs_clocks: Whether the constructor takes the full logical
            clock registry as its first argument (omniscient
            strategies); declarative plan specs inject it at build time.
    """

    name = "abstract"
    needs_clocks = False

    def on_break_in(self, process: "Process", rng: random.Random) -> None:
        """Called at the moment of corruption (state capture, sabotage)."""

    def on_message(self, process: "Process", message: "Message",
                   rng: random.Random) -> None:
        """Handle a message delivered to the controlled node.

        The default drops it (a silent fault).
        """

    def on_leave(self, process: "Process", rng: random.Random) -> None:
        """Called just before the adversary releases the node.

        This is where "leave the clock somewhere nasty" attacks live —
        whatever ``adj`` holds when this returns is what the recovering
        protocol must fix.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
