"""Mobile Byzantine adversary: f-limited scheduling plus attack strategies.

Implements the adversary model of Section 2.2 / Definition 2: arbitrary
(Byzantine) control of at most ``f`` processors during any window of
length ``PI``, with no fault or recovery detection available to the
protocol.
"""

from repro.adversary.base import ByzantineStrategy
from repro.adversary.mobile import (
    MobileAdversary,
    PlannedCorruption,
    audit_f_limited,
    random_plan,
    rotating_plan,
    round_robin_plan,
    single_burst_plan,
)
from repro.adversary.plans import (
    PLAN_KINDS,
    PlanContext,
    PlanSpec,
    StrategySpec,
    register_plan_kind,
)
from repro.adversary.strategies import (
    STRATEGIES,
    STRATEGY_FACTORIES,
    LiarStrategy,
    MalformedStrategy,
    ReplayStrategy,
    NearBoundaryResetStrategy,
    NoisyStrategy,
    RandomClockStrategy,
    SilentStrategy,
    SplitWorldStrategy,
    StealthDriftStrategy,
    TwoFacedStrategy,
    build_strategy_factory,
    register_strategy,
    register_strategy_factory,
    standard_strategy_mix,
)

__all__ = [
    "ByzantineStrategy",
    "MobileAdversary",
    "PlannedCorruption",
    "audit_f_limited",
    "rotating_plan",
    "random_plan",
    "round_robin_plan",
    "single_burst_plan",
    "PlanSpec",
    "PlanContext",
    "StrategySpec",
    "PLAN_KINDS",
    "register_plan_kind",
    "STRATEGIES",
    "STRATEGY_FACTORIES",
    "register_strategy",
    "register_strategy_factory",
    "build_strategy_factory",
    "standard_strategy_mix",
    "SilentStrategy",
    "RandomClockStrategy",
    "LiarStrategy",
    "ReplayStrategy",
    "MalformedStrategy",
    "NoisyStrategy",
    "TwoFacedStrategy",
    "SplitWorldStrategy",
    "NearBoundaryResetStrategy",
    "StealthDriftStrategy",
]
