"""Mobile Byzantine adversary: f-limited scheduling plus attack strategies.

Implements the adversary model of Section 2.2 / Definition 2: arbitrary
(Byzantine) control of at most ``f`` processors during any window of
length ``PI``, with no fault or recovery detection available to the
protocol.
"""

from repro.adversary.base import ByzantineStrategy
from repro.adversary.mobile import (
    MobileAdversary,
    PlannedCorruption,
    audit_f_limited,
    random_plan,
    rotating_plan,
    round_robin_plan,
    single_burst_plan,
)
from repro.adversary.strategies import (
    LiarStrategy,
    MalformedStrategy,
    ReplayStrategy,
    NearBoundaryResetStrategy,
    NoisyStrategy,
    RandomClockStrategy,
    SilentStrategy,
    SplitWorldStrategy,
    StealthDriftStrategy,
    TwoFacedStrategy,
)

__all__ = [
    "ByzantineStrategy",
    "MobileAdversary",
    "PlannedCorruption",
    "audit_f_limited",
    "rotating_plan",
    "random_plan",
    "round_robin_plan",
    "single_burst_plan",
    "SilentStrategy",
    "RandomClockStrategy",
    "LiarStrategy",
    "ReplayStrategy",
    "MalformedStrategy",
    "NoisyStrategy",
    "TwoFacedStrategy",
    "SplitWorldStrategy",
    "NearBoundaryResetStrategy",
    "StealthDriftStrategy",
]
