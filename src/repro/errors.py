"""Exception hierarchy for the ``repro`` package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch package failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from runtime
violations of the paper's model assumptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A scenario, protocol, or network was configured inconsistently.

    Raised eagerly, at construction time, so that a misconfigured
    experiment fails before any simulation work is done.
    """


class ParameterError(ConfigurationError):
    """Protocol parameters violate the constraints of Section 3.2.

    Examples: ``n < 3f + 1``, ``SyncInt < 2 * MaxWait``,
    ``MaxWait < 2 * delta``, or ``K < 5`` when Theorem 5 bounds are
    requested.
    """


class TopologyError(ConfigurationError):
    """A topology operation referenced a missing node or edge."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state.

    Examples: scheduling an event in the past, or running a simulator
    that was already finalized.
    """


class ClockError(ReproError):
    """A hardware-clock model was queried outside its valid domain.

    Examples: reading a clock before its origin time, or asking for the
    inverse of a hardware value the clock never reaches within its
    generated horizon.
    """


class AdversaryError(ReproError):
    """An adversary plan violates the model of Definition 2.

    Raised by the f-limit auditor when a corruption plan controls more
    than ``f`` processors within some window of length ``PI``, or when a
    strategy touches a processor it does not currently control.
    """


class MeasurementError(ReproError):
    """A metric was requested over an empty or inconsistent sample set."""


class StoreError(ReproError):
    """A result store could not be built, persisted, or loaded.

    Examples: a record whose config does not round-trip through JSON,
    a store directory written by a newer format version, a parquet
    chunk in an environment without pyarrow, or a query naming a
    column the store does not have.
    """


class EvaluationError(ReproError):
    """An evaluation spec is malformed or cannot run against a store.

    Examples: an unknown check kind or comparison operator, a spec
    registered twice under one name, or evaluating a spec whose
    required columns are absent in strict mode.
    """


class CampaignError(ReproError):
    """A campaign run failed and failure isolation was off.

    Carries which run died so a sweep over hundreds of configs reports
    the culprit instead of a bare worker traceback.

    Attributes:
        index: Position of the failed run in the campaign.
        config: The failed run's config dict (``None`` if the scenario
            could not even be serialized).
    """

    def __init__(self, message: str, index: int | None = None,
                 config: dict | None = None) -> None:
        super().__init__(message)
        self.index = index
        self.config = config
