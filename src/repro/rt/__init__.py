"""Real-time deployment path: the same protocols on asyncio.

The packages below :mod:`repro.runtime` split along the seam the paper
itself draws between the algorithm (Figure 1, defined against local
clocks, timers, and bounded-delay links) and the execution substrate.
:mod:`repro.sim` provides the analysis substrate; this package provides
the deployment one:

* :mod:`repro.rt.runtime` — :class:`AsyncioRuntime`, mapping local-clock
  timers onto ``loop.call_at`` and messages onto a transport;
* :mod:`repro.rt.codec` — the versioned binary wire codec (legacy JSON
  accepted on decode for rolling upgrades);
* :mod:`repro.rt.transport` — in-memory loopback and UDP transports
  over the codec;
* :mod:`repro.rt.virtualtime` — a controllable virtual-time loop so the
  rt path is testable deterministically;
* :mod:`repro.rt.live` — cluster wiring and the ``repro live`` engine.
"""

from repro.rt.codec import (
    GENERIC_TAG,
    MAGIC,
    WIRE_VERSION,
    CodecVersionError,
    PayloadSpec,
    encode_datagram_binary,
    encode_datagram_json,
    pack_payload,
    registered_payloads,
    unpack_payload,
)
from repro.rt.live import (
    LiveCluster,
    LiveReport,
    build_cluster,
    default_live_params,
    make_live_clocks,
    run_live,
)
from repro.rt.runtime import AsyncioRuntime, RtTimerHandle
from repro.rt.transport import (
    LoopbackTransport,
    Transport,
    TransportError,
    UdpTransport,
    decode_datagram,
    decode_payload,
    encode_datagram,
    encode_payload,
    register_payload,
)
from repro.rt.virtualtime import ScheduledCall, VirtualTimeLoop

__all__ = [
    "GENERIC_TAG",
    "MAGIC",
    "WIRE_VERSION",
    "CodecVersionError",
    "PayloadSpec",
    "encode_datagram_binary",
    "encode_datagram_json",
    "pack_payload",
    "registered_payloads",
    "unpack_payload",
    "AsyncioRuntime",
    "RtTimerHandle",
    "LiveCluster",
    "LiveReport",
    "build_cluster",
    "default_live_params",
    "make_live_clocks",
    "run_live",
    "LoopbackTransport",
    "Transport",
    "TransportError",
    "UdpTransport",
    "decode_datagram",
    "decode_payload",
    "encode_datagram",
    "encode_payload",
    "register_payload",
    "ScheduledCall",
    "VirtualTimeLoop",
]
