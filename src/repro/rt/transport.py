"""Real-time transports for protocol payloads.

Two transports implement the paper's link model (authenticated
point-to-point channels, delivery within ``delta``) for the rt path:

* :class:`LoopbackTransport` — an in-memory hub for N nodes sharing one
  event loop.  Delivery is a ``call_at`` with a configurable fixed
  delay, so under a :class:`~repro.rt.virtualtime.VirtualTimeLoop` it
  reproduces the simulator's ``FixedDelay`` network exactly — the
  substrate of the cross-runtime conformance tests.
* :class:`UdpTransport` — one UDP socket per node on localhost, binary
  datagrams (see :mod:`repro.rt.codec`), for genuine multi-node (and
  multi-process) deployment.  Sender identity is carried in the
  datagram and trusted, standing in for the authenticated links the
  paper assumes ("we assume ... a can identify the sender of every
  message it receives"); a production deployment would MAC each
  datagram under a pairwise key.

The wire codec itself lives in :mod:`repro.rt.codec`; its entry points
(:func:`register_payload`, :func:`encode_datagram`,
:func:`decode_datagram`, ...) are re-exported here for compatibility
with pre-codec deployments.
"""

from __future__ import annotations

import asyncio
from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.rt.codec import (
    CodecVersionError,
    TransportError,
    decode_datagram,
    decode_payload,
    encode_datagram,
    encode_payload,
    register_payload,
)
from repro.runtime.api import MessageHandler
from repro.runtime.messages import Message

__all__ = [
    "CodecVersionError",
    "LoopbackTransport",
    "Transport",
    "TransportError",
    "UdpTransport",
    "decode_datagram",
    "decode_payload",
    "encode_datagram",
    "encode_payload",
    "register_payload",
]


class Transport(ABC):
    """Message fabric interface consumed by
    :class:`~repro.rt.runtime.AsyncioRuntime`."""

    @abstractmethod
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Transmit ``payload``; delivery is asynchronous."""

    @abstractmethod
    def bind(self, node_id: int, handler: MessageHandler) -> None:
        """Attach the inbound-message handler for ``node_id``."""

    @abstractmethod
    def neighbors(self, node_id: int) -> list[int]:
        """Peers ``node_id`` may exchange messages with (fresh list)."""


class LoopbackTransport(Transport):
    """In-memory full-mesh transport for nodes sharing one event loop.

    Args:
        loop: Real asyncio loop or virtual-time loop (needs ``time()``
            and ``call_at()``).
        delay: Fixed one-way delivery delay in seconds.  Constant on
            purpose: under a virtual loop this makes the transport a
            faithful twin of the simulator's ``FixedDelay`` network.
        now: Callable returning the cluster tau used to stamp
            ``sent_at`` / ``delivered_at``; defaults to ``loop.time``.

    Attributes:
        messages_sent: Total messages accepted for delivery.
        messages_delivered: Total messages handed to handlers.
    """

    def __init__(self, loop: Any, delay: float = 0.001,
                 now: Callable[[], float] | None = None) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self.loop = loop
        self.delay = float(delay)
        self._now = now if now is not None else loop.time
        self._handlers: dict[int, MessageHandler] = {}
        self._msg_id = 0
        self.messages_sent = 0
        self.messages_delivered = 0

    def bind(self, node_id: int, handler: MessageHandler) -> None:
        self._handlers[node_id] = handler

    def neighbors(self, node_id: int) -> list[int]:
        return [node for node in self._handlers if node != node_id]

    def send(self, sender: int, recipient: int, payload: Any) -> None:
        sent_at = self._now()
        self.messages_sent += 1
        self._msg_id += 1
        msg_id = self._msg_id
        delivered_at = sent_at + self.delay

        def deliver() -> None:
            handler = self._handlers.get(recipient)
            if handler is None:
                return  # recipient gone: datagram silently dropped
            self.messages_delivered += 1
            handler.deliver(Message(sender=sender, recipient=recipient,
                                    payload=payload, sent_at=sent_at,
                                    delivered_at=delivered_at, msg_id=msg_id))

        self.loop.call_at(self.loop.time() + self.delay, deliver)


class _UdpProtocol(asyncio.DatagramProtocol):
    """asyncio glue: forwards received datagrams to the owning transport."""

    def __init__(self, owner: "UdpTransport") -> None:
        self.owner = owner

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        """Decode and deliver one datagram (malformed ones are dropped)."""
        self.owner._on_datagram(data)


class UdpTransport(Transport):
    """One node's UDP endpoint on localhost.

    Unlike :class:`LoopbackTransport` (a shared hub), each node owns a
    ``UdpTransport``; peers are wired up with :meth:`set_peers` after
    every endpoint has bound its socket and learned its port.

    Args:
        node_id: The owning node.
        now: Callable returning the cluster tau for message stamps.
        wire: Encoding used for *outbound* datagrams: ``"binary"``
            (default) or ``"json"`` (the pre-codec form, for rolling
            upgrades).  Inbound datagrams are always accepted in both
            forms — that asymmetry is the upgrade path: flip senders to
            binary one node at a time, old-format peers keep working.

    Attributes:
        address: ``(host, port)`` after :meth:`start`.
        messages_sent: Datagrams sent to known peers.
        messages_delivered: Datagrams decoded and handed to the handler.
        malformed_dropped: Datagrams that failed to decode (corruption).
        misrouted_dropped: Well-formed datagrams addressed to a
            different node (a routing/config error, not corruption).
        version_dropped: Datagrams with an unsupported wire version
            (deployment skew: a peer is running a newer codec).
    """

    def __init__(self, node_id: int, now: Callable[[], float],
                 wire: str = "binary") -> None:
        if wire not in ("binary", "json"):
            raise ConfigurationError(f"unknown wire format {wire!r}")
        self.node_id = node_id
        self.wire = wire
        self._now = now
        self._handler: MessageHandler | None = None
        self._peers: dict[int, tuple[str, int]] = {}
        self._endpoint = None
        self.address: tuple[str, int] | None = None
        self._msg_id = 0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.malformed_dropped = 0
        self.misrouted_dropped = 0
        self.version_dropped = 0

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the UDP socket; returns the actual ``(host, port)``."""
        loop = asyncio.get_running_loop()
        self._endpoint, _ = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), local_addr=(host, port))
        sockname = self._endpoint.get_extra_info("sockname")
        self.address = (sockname[0], sockname[1])
        return self.address

    def set_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        """Install the node-id to address map (excluding this node)."""
        self._peers = {node: addr for node, addr in peers.items()
                       if node != self.node_id}

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None

    def bind(self, node_id: int, handler: MessageHandler) -> None:
        if node_id != self.node_id:
            raise ConfigurationError(
                f"UdpTransport for node {self.node_id} cannot bind node {node_id}")
        self._handler = handler

    def neighbors(self, node_id: int) -> list[int]:
        return sorted(self._peers)

    def send(self, sender: int, recipient: int, payload: Any) -> None:
        if sender != self.node_id:
            raise ConfigurationError(
                f"UdpTransport for node {self.node_id} cannot send as {sender}")
        if self._endpoint is None:
            raise TransportError("transport not started")
        addr = self._peers.get(recipient)
        if addr is None:
            return  # unknown peer: dropped, like a dead link
        self.messages_sent += 1
        self._endpoint.sendto(encode_datagram(sender, recipient, payload,
                                              self._now(), wire=self.wire),
                              addr)

    def _on_datagram(self, data: bytes) -> None:
        if self._handler is None:
            return
        try:
            sender, recipient, payload, sent_at = decode_datagram(data)
        except CodecVersionError:
            self.version_dropped += 1
            return
        except TransportError:
            self.malformed_dropped += 1
            return
        if recipient != self.node_id:
            self.misrouted_dropped += 1
            return
        self._msg_id += 1
        self.messages_delivered += 1
        self._handler.deliver(Message(sender=sender, recipient=recipient,
                                      payload=payload, sent_at=sent_at,
                                      delivered_at=self._now(),
                                      msg_id=self._msg_id))
