"""Real-time transports and the wire codec for protocol payloads.

Two transports implement the paper's link model (authenticated
point-to-point channels, delivery within ``delta``) for the rt path:

* :class:`LoopbackTransport` — an in-memory hub for N nodes sharing one
  event loop.  Delivery is a ``call_at`` with a configurable fixed
  delay, so under a :class:`~repro.rt.virtualtime.VirtualTimeLoop` it
  reproduces the simulator's ``FixedDelay`` network exactly — the
  substrate of the cross-runtime conformance tests.
* :class:`UdpTransport` — one UDP socket per node on localhost, JSON
  datagrams, for genuine multi-node (and multi-process) deployment.
  Sender identity is carried in the datagram and trusted, standing in
  for the authenticated links the paper assumes ("we assume ... a
  can identify the sender of every message it receives"); a production
  deployment would MAC each datagram under a pairwise key.

The codec (:func:`encode_payload` / :func:`decode_payload`) covers the
protocol payloads that cross the wire — :class:`~repro.runtime.messages.Ping`,
:class:`~repro.runtime.messages.Pong`,
:class:`~repro.runtime.messages.AppPayload` — via a registry that
deployments can extend with :func:`register_payload`.
"""

from __future__ import annotations

import asyncio
import json
from abc import ABC, abstractmethod
from dataclasses import asdict, fields, is_dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError, ReproError
from repro.runtime.api import MessageHandler
from repro.runtime.messages import AppPayload, Message, Ping, Pong


class TransportError(ReproError):
    """A transport was used before setup or received a malformed datagram."""


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------

_PAYLOAD_REGISTRY: dict[str, type] = {}


def register_payload(key: str, cls: type) -> None:
    """Register a dataclass payload type under a wire ``key``.

    Args:
        key: Short type tag carried in the datagram's ``k`` field.
        cls: A dataclass whose fields are JSON-serializable.
    """
    if not is_dataclass(cls):
        raise ConfigurationError(f"payload type {cls!r} must be a dataclass")
    existing = _PAYLOAD_REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"wire key {key!r} already registered for {existing!r}")
    _PAYLOAD_REGISTRY[key] = cls


register_payload("ping", Ping)
register_payload("pong", Pong)
register_payload("app", AppPayload)


def encode_payload(payload: Any) -> dict[str, Any]:
    """Encode a registered payload to its JSON-able wire dict."""
    for key, cls in _PAYLOAD_REGISTRY.items():
        if type(payload) is cls:
            wire = asdict(payload)
            wire["k"] = key
            return wire
    raise TransportError(
        f"payload type {type(payload).__name__} is not wire-registered; "
        f"call repro.rt.transport.register_payload first")


def decode_payload(wire: dict[str, Any]) -> Any:
    """Decode a wire dict produced by :func:`encode_payload`."""
    key = wire.get("k")
    cls = _PAYLOAD_REGISTRY.get(key)
    if cls is None:
        raise TransportError(f"unknown wire payload key {key!r}")
    names = {f.name for f in fields(cls)}
    return cls(**{name: value for name, value in wire.items() if name in names})


def encode_datagram(sender: int, recipient: int, payload: Any,
                    sent_at: float) -> bytes:
    """Serialize one message to a UDP datagram (compact JSON)."""
    return json.dumps(
        {"s": sender, "r": recipient, "t": sent_at,
         "p": encode_payload(payload)},
        sort_keys=True, separators=(",", ":")).encode()


def decode_datagram(data: bytes) -> tuple[int, int, Any, float]:
    """Parse a datagram back to ``(sender, recipient, payload, sent_at)``."""
    try:
        raw = json.loads(data.decode())
        return (int(raw["s"]), int(raw["r"]), decode_payload(raw["p"]),
                float(raw["t"]))
    except (ValueError, KeyError, TypeError) as exc:
        raise TransportError(f"malformed datagram: {exc}") from exc


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------

class Transport(ABC):
    """Message fabric interface consumed by
    :class:`~repro.rt.runtime.AsyncioRuntime`."""

    @abstractmethod
    def send(self, sender: int, recipient: int, payload: Any) -> None:
        """Transmit ``payload``; delivery is asynchronous."""

    @abstractmethod
    def bind(self, node_id: int, handler: MessageHandler) -> None:
        """Attach the inbound-message handler for ``node_id``."""

    @abstractmethod
    def neighbors(self, node_id: int) -> list[int]:
        """Peers ``node_id`` may exchange messages with (fresh list)."""


class LoopbackTransport(Transport):
    """In-memory full-mesh transport for nodes sharing one event loop.

    Args:
        loop: Real asyncio loop or virtual-time loop (needs ``time()``
            and ``call_at()``).
        delay: Fixed one-way delivery delay in seconds.  Constant on
            purpose: under a virtual loop this makes the transport a
            faithful twin of the simulator's ``FixedDelay`` network.
        now: Callable returning the cluster tau used to stamp
            ``sent_at`` / ``delivered_at``; defaults to ``loop.time``.

    Attributes:
        messages_delivered: Total messages handed to handlers.
    """

    def __init__(self, loop: Any, delay: float = 0.001,
                 now: Callable[[], float] | None = None) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        self.loop = loop
        self.delay = float(delay)
        self._now = now if now is not None else loop.time
        self._handlers: dict[int, MessageHandler] = {}
        self._msg_id = 0
        self.messages_delivered = 0

    def bind(self, node_id: int, handler: MessageHandler) -> None:
        self._handlers[node_id] = handler

    def neighbors(self, node_id: int) -> list[int]:
        return [node for node in self._handlers if node != node_id]

    def send(self, sender: int, recipient: int, payload: Any) -> None:
        sent_at = self._now()
        self._msg_id += 1
        msg_id = self._msg_id
        delivered_at = sent_at + self.delay

        def deliver() -> None:
            handler = self._handlers.get(recipient)
            if handler is None:
                return  # recipient gone: datagram silently dropped
            self.messages_delivered += 1
            handler.deliver(Message(sender=sender, recipient=recipient,
                                    payload=payload, sent_at=sent_at,
                                    delivered_at=delivered_at, msg_id=msg_id))

        self.loop.call_at(self.loop.time() + self.delay, deliver)


class _UdpProtocol(asyncio.DatagramProtocol):
    """asyncio glue: forwards received datagrams to the owning transport."""

    def __init__(self, owner: "UdpTransport") -> None:
        self.owner = owner

    def datagram_received(self, data: bytes, addr: tuple) -> None:
        """Decode and deliver one datagram (malformed ones are dropped)."""
        self.owner._on_datagram(data)


class UdpTransport(Transport):
    """One node's UDP endpoint on localhost.

    Unlike :class:`LoopbackTransport` (a shared hub), each node owns a
    ``UdpTransport``; peers are wired up with :meth:`set_peers` after
    every endpoint has bound its socket and learned its port.

    Args:
        node_id: The owning node.
        now: Callable returning the cluster tau for message stamps.

    Attributes:
        address: ``(host, port)`` after :meth:`start`.
        messages_delivered: Datagrams decoded and handed to the handler.
        malformed_dropped: Datagrams that failed to decode.
    """

    def __init__(self, node_id: int, now: Callable[[], float]) -> None:
        self.node_id = node_id
        self._now = now
        self._handler: MessageHandler | None = None
        self._peers: dict[int, tuple[str, int]] = {}
        self._endpoint = None
        self.address: tuple[str, int] | None = None
        self._msg_id = 0
        self.messages_delivered = 0
        self.malformed_dropped = 0

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the UDP socket; returns the actual ``(host, port)``."""
        loop = asyncio.get_running_loop()
        self._endpoint, _ = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), local_addr=(host, port))
        sockname = self._endpoint.get_extra_info("sockname")
        self.address = (sockname[0], sockname[1])
        return self.address

    def set_peers(self, peers: dict[int, tuple[str, int]]) -> None:
        """Install the node-id to address map (excluding this node)."""
        self._peers = {node: addr for node, addr in peers.items()
                       if node != self.node_id}

    def close(self) -> None:
        """Close the socket (idempotent)."""
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None

    def bind(self, node_id: int, handler: MessageHandler) -> None:
        if node_id != self.node_id:
            raise ConfigurationError(
                f"UdpTransport for node {self.node_id} cannot bind node {node_id}")
        self._handler = handler

    def neighbors(self, node_id: int) -> list[int]:
        return sorted(self._peers)

    def send(self, sender: int, recipient: int, payload: Any) -> None:
        if sender != self.node_id:
            raise ConfigurationError(
                f"UdpTransport for node {self.node_id} cannot send as {sender}")
        if self._endpoint is None:
            raise TransportError("transport not started")
        addr = self._peers.get(recipient)
        if addr is None:
            return  # unknown peer: dropped, like a dead link
        self._endpoint.sendto(encode_datagram(sender, recipient, payload,
                                              self._now()), addr)

    def _on_datagram(self, data: bytes) -> None:
        if self._handler is None:
            return
        try:
            sender, recipient, payload, sent_at = decode_datagram(data)
        except TransportError:
            self.malformed_dropped += 1
            return
        if recipient != self.node_id:
            self.malformed_dropped += 1
            return
        self._msg_id += 1
        self.messages_delivered += 1
        self._handler.deliver(Message(sender=sender, recipient=recipient,
                                      payload=payload, sent_at=sent_at,
                                      delivered_at=self._now(),
                                      msg_id=self._msg_id))
