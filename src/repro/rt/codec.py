"""Versioned binary wire codec for rt datagrams.

PR 5 shipped JSON datagrams — easy to debug, expensive to parse, and
~4x larger than the data they carry.  This module replaces them with a
compact struct-packed format while keeping the JSON form decodable, so
a cluster can roll from JSON nodes to binary nodes one process at a
time (the "rolling compatibility" rule below).

Binary layout (wire version 1), all integers big-endian::

    offset  size  field
    ------  ----  --------------------------------------------------
    0       1     magic 0xC7 (never 0x7B = "{", so JSON sniffs clean)
    1       1     wire version (currently 1)
    2       1     payload tag (0 = generic, else registry-assigned)
    3       4     sender node id    (int32)
    7       4     recipient node id (int32)
    11      8     sent_at           (float64)
    19      ...   payload body (per-type, see below)

Payload bodies are produced by per-type packers attached to the
:func:`register_payload` registry.  The built-in protocol payloads —
:class:`~repro.runtime.messages.Ping`, :class:`~repro.runtime.messages.Pong`,
:class:`~repro.service.query.TimeQuery` / ``TimeReply`` (registered by
:mod:`repro.service.query`) — pack to fixed ``struct`` records;
:class:`~repro.runtime.messages.AppPayload` and any
deployment-registered dataclass without a custom packer fall back to
the *generic* body (tag 0)::

    offset  size  field
    0       1     key length K
    1       K     registry key (UTF-8)
    1+K     ...   JSON object of the dataclass fields

so extending the codec stays a one-line ``register_payload(key, cls)``
call — a binary packer is an optimization, never a requirement.

Versioning rules:

* The version byte is bumped only for layout changes a version-1
  decoder cannot parse.  Decoders accept exactly one *older* form for
  rolling upgrades: version 1 decoders accept the PR 5 JSON datagram
  (treated as "wire version 0"); a future version 2 decoder would
  accept version 1 and drop JSON.
* A datagram with the magic byte but a different version raises
  :class:`CodecVersionError` — a distinct exception so transports can
  count version mismatches (a deployment skew signal) separately from
  corruption.
* Floats travel as IEEE-754 doubles in both forms (JSON via Python's
  shortest-repr round-trip), so a value decodes bit-exactly no matter
  which wire carried it — the cross-version conformance tests rely on
  this.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict, dataclass, fields, is_dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError, ReproError
from repro.runtime.messages import AppPayload, Ping, Pong


class TransportError(ReproError):
    """A transport was used before setup or received a malformed datagram."""


class CodecVersionError(TransportError):
    """A datagram carried a wire version this codec does not speak."""


#: First byte of every binary datagram.  Deliberately not ``0x7B``
#: (``"{"``): the decoder sniffs the leader byte to tell binary frames
#: from legacy JSON datagrams.
MAGIC = 0xC7

#: Current binary wire version.
WIRE_VERSION = 1

#: Payload tag of the generic (key-prefixed JSON) body.
GENERIC_TAG = 0

_HEADER = struct.Struct("!BBBiid")
_JSON_LEADER = ord("{")


# ---------------------------------------------------------------------------
# Payload registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PayloadSpec:
    """One registered payload type and its wire representations.

    Attributes:
        key: Type tag carried in JSON datagrams and generic bodies.
        cls: The dataclass being transported.
        tag: Binary payload tag, or None for generic-body encoding.
        pack: ``payload -> body bytes`` (None for generic encoding).
        unpack: ``body bytes -> payload`` (None for generic encoding).
    """

    key: str
    cls: type
    tag: int | None = None
    pack: Callable[[Any], bytes] | None = None
    unpack: Callable[[bytes], Any] | None = None


_BY_KEY: dict[str, PayloadSpec] = {}
_BY_CLS: dict[type, PayloadSpec] = {}
_BY_TAG: dict[int, PayloadSpec] = {}


def register_payload(key: str, cls: type, *, tag: int | None = None,
                     pack: Callable[[Any], bytes] | None = None,
                     unpack: Callable[[bytes], Any] | None = None) -> None:
    """Register a dataclass payload type under a wire ``key``.

    Args:
        key: Short type tag; carried verbatim in JSON datagrams and in
            generic binary bodies, so it must fit in 255 UTF-8 bytes.
        cls: A dataclass whose fields are JSON-serializable.
        tag: Optional binary payload tag (1-255).  Must be given
            together with ``pack``/``unpack``; without it the type uses
            the generic key-prefixed JSON body.
        pack: Serializer ``payload -> body bytes`` for the binary wire.
        unpack: Deserializer ``body bytes -> payload``.
    """
    if not is_dataclass(cls):
        raise ConfigurationError(f"payload type {cls!r} must be a dataclass")
    if len(key.encode("utf-8")) > 255:
        raise ConfigurationError(f"wire key {key!r} exceeds 255 bytes")
    if (tag is None) != (pack is None) or (pack is None) != (unpack is None):
        raise ConfigurationError(
            "tag, pack and unpack must be given together (or none of them)")
    if tag is not None and not (1 <= tag <= 255):
        raise ConfigurationError(f"binary tag must be in 1..255, got {tag}")
    existing = _BY_KEY.get(key)
    if existing is not None and existing.cls is not cls:
        raise ConfigurationError(
            f"wire key {key!r} already registered for {existing.cls!r}")
    if tag is not None:
        tagged = _BY_TAG.get(tag)
        if tagged is not None and tagged.cls is not cls:
            raise ConfigurationError(
                f"binary tag {tag} already registered for {tagged.cls!r}")
    spec = PayloadSpec(key=key, cls=cls, tag=tag, pack=pack, unpack=unpack)
    _BY_KEY[key] = spec
    _BY_CLS[cls] = spec
    if tag is not None:
        _BY_TAG[tag] = spec


def registered_payloads() -> dict[str, type]:
    """Snapshot of the registry: wire key to payload class."""
    return {key: spec.cls for key, spec in _BY_KEY.items()}


def _spec_for(payload: Any) -> PayloadSpec:
    spec = _BY_CLS.get(type(payload))
    if spec is None:
        raise TransportError(
            f"payload type {type(payload).__name__} is not wire-registered; "
            f"call repro.rt.codec.register_payload first")
    return spec


def _construct(spec: PayloadSpec, wire: dict[str, Any]) -> Any:
    """Build the payload, turning missing required fields into the
    documented :class:`TransportError` (not a bare ``TypeError``)."""
    names = {f.name for f in fields(spec.cls)}
    kwargs = {name: value for name, value in wire.items() if name in names}
    try:
        return spec.cls(**kwargs)
    except TypeError as exc:
        raise TransportError(
            f"payload {spec.key!r} is missing required fields: {exc}") from exc


# ---------------------------------------------------------------------------
# JSON payload form (wire version 0, kept decodable)
# ---------------------------------------------------------------------------


def encode_payload(payload: Any) -> dict[str, Any]:
    """Encode a registered payload to its JSON-able wire dict."""
    spec = _spec_for(payload)
    wire = asdict(payload)
    wire["k"] = spec.key
    return wire


def decode_payload(wire: dict[str, Any]) -> Any:
    """Decode a wire dict produced by :func:`encode_payload`.

    Raises:
        TransportError: Unknown key, or required fields missing.
    """
    key = wire.get("k")
    spec = _BY_KEY.get(key)
    if spec is None:
        raise TransportError(f"unknown wire payload key {key!r}")
    return _construct(spec, wire)


# ---------------------------------------------------------------------------
# Binary payload bodies
# ---------------------------------------------------------------------------


def pack_payload(payload: Any) -> tuple[int, bytes]:
    """Binary-encode a registered payload; returns ``(tag, body)``."""
    spec = _spec_for(payload)
    if spec.pack is not None:
        return spec.tag, spec.pack(payload)
    key = spec.key.encode("utf-8")
    body = json.dumps(asdict(payload), sort_keys=True,
                      separators=(",", ":")).encode()
    return GENERIC_TAG, bytes((len(key),)) + key + body


def unpack_payload(tag: int, body: bytes) -> Any:
    """Decode a binary payload body produced by :func:`pack_payload`.

    Raises:
        TransportError: Unknown tag/key, truncated or corrupt body.
    """
    if tag == GENERIC_TAG:
        if not body:
            raise TransportError("generic payload body is empty")
        key_len = body[0]
        if len(body) < 1 + key_len:
            raise TransportError("generic payload key is truncated")
        try:
            key = body[1:1 + key_len].decode("utf-8")
            wire = json.loads(body[1 + key_len:].decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise TransportError(f"corrupt generic payload body: {exc}") from exc
        if not isinstance(wire, dict):
            raise TransportError("generic payload body is not a JSON object")
        spec = _BY_KEY.get(key)
        if spec is None:
            raise TransportError(f"unknown wire payload key {key!r}")
        return _construct(spec, wire)
    spec = _BY_TAG.get(tag)
    if spec is None:
        raise TransportError(f"unknown binary payload tag {tag}")
    try:
        return spec.unpack(body)
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise TransportError(
            f"corrupt {spec.key!r} payload body: {exc}") from exc


# ---------------------------------------------------------------------------
# Datagram framing
# ---------------------------------------------------------------------------


def encode_datagram_binary(sender: int, recipient: int, payload: Any,
                           sent_at: float) -> bytes:
    """Serialize one message to a version-1 binary datagram."""
    tag, body = pack_payload(payload)
    return _HEADER.pack(MAGIC, WIRE_VERSION, tag, sender, recipient,
                        sent_at) + body


def encode_datagram_json(sender: int, recipient: int, payload: Any,
                         sent_at: float) -> bytes:
    """Serialize one message to the legacy (version-0) JSON datagram."""
    return json.dumps(
        {"s": sender, "r": recipient, "t": sent_at,
         "p": encode_payload(payload)},
        sort_keys=True, separators=(",", ":")).encode()


def encode_datagram(sender: int, recipient: int, payload: Any,
                    sent_at: float, wire: str = "binary") -> bytes:
    """Serialize one message for the wire (``"binary"`` or ``"json"``)."""
    if wire == "binary":
        return encode_datagram_binary(sender, recipient, payload, sent_at)
    if wire == "json":
        return encode_datagram_json(sender, recipient, payload, sent_at)
    raise ConfigurationError(f"unknown wire format {wire!r}")


def decode_datagram(data: bytes) -> tuple[int, int, Any, float]:
    """Parse a datagram back to ``(sender, recipient, payload, sent_at)``.

    Accepts the current binary form *and* the legacy JSON form (rolling
    compatibility: a binary node keeps understanding JSON peers for one
    version).

    Raises:
        CodecVersionError: Binary magic with an unsupported version.
        TransportError: Anything else that fails to parse.
    """
    if not data:
        raise TransportError("empty datagram")
    leader = data[0]
    if leader == MAGIC:
        if len(data) < 2:
            raise TransportError("truncated datagram: no version byte")
        version = data[1]
        if version != WIRE_VERSION:
            raise CodecVersionError(
                f"unsupported wire version {version} "
                f"(this codec speaks {WIRE_VERSION} and legacy JSON)")
        if len(data) < _HEADER.size:
            raise TransportError(
                f"truncated datagram: {len(data)} bytes < "
                f"{_HEADER.size}-byte header")
        _, _, tag, sender, recipient, sent_at = _HEADER.unpack_from(data)
        return (sender, recipient, unpack_payload(tag, data[_HEADER.size:]),
                sent_at)
    if leader == _JSON_LEADER:
        try:
            raw = json.loads(data.decode())
            return (int(raw["s"]), int(raw["r"]), decode_payload(raw["p"]),
                    float(raw["t"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise TransportError(f"malformed datagram: {exc}") from exc
    raise TransportError(
        f"unrecognized datagram leader byte {leader:#04x} "
        f"(expected {MAGIC:#04x} or JSON)")


# ---------------------------------------------------------------------------
# Built-in packers (the hot protocol payloads)
# ---------------------------------------------------------------------------

_PING = struct.Struct("!qq")
_PONG = struct.Struct("!qd")


def _pack_ping(payload: Ping) -> bytes:
    return _PING.pack(payload.nonce, payload.round_no)


def _unpack_ping(body: bytes) -> Ping:
    nonce, round_no = _PING.unpack(body)
    return Ping(nonce=nonce, round_no=round_no)


def _pack_pong(payload: Pong) -> bytes:
    return _PONG.pack(payload.nonce, payload.clock_value)


def _unpack_pong(body: bytes) -> Pong:
    nonce, clock_value = _PONG.unpack(body)
    return Pong(nonce=nonce, clock_value=clock_value)


register_payload("ping", Ping, tag=1, pack=_pack_ping, unpack=_unpack_ping)
register_payload("pong", Pong, tag=2, pack=_pack_pong, unpack=_unpack_pong)
register_payload("app", AppPayload)
