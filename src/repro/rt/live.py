"""Live deployment: run the paper's Sync on a real event loop.

This module is the ``repro live`` engine.  It spawns ``n``
:class:`~repro.rt.runtime.AsyncioRuntime` nodes — each with its own
drift-and-offset hardware-clock model layered over the wall clock —
wires them through a UDP (or in-memory loopback) transport, runs the
*unmodified* :class:`~repro.core.sync.SyncProcess` for a wall-clock
duration, and streams Theorem5Probe-style deviation telemetry through
the standard :class:`~repro.obs.bus.EventBus`:

* ``live.deviation`` — per node per sample: clock reading and signed
  deviation from the cluster median;
* ``live.spread`` — per sample: the max-minus-min cluster spread, the
  live analogue of Definition 3's pairwise deviation;
* ``live.sync`` — one event per completed Sync (correction, round).

The same wiring runs under a :class:`~repro.rt.virtualtime.VirtualTimeLoop`
via :func:`build_cluster` + ``loop.run_until`` — that path is what the
cross-runtime conformance suite drives deterministically.

:func:`run_live` finishes by fronting each node with a
:class:`~repro.service.timeservice.SecureTimeService`, so the service
stack of PR 3 finally answers ``now()`` from a clock that ticks in real
time.
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.core.params import ProtocolParams
from repro.core.sync import SyncProcess
from repro.errors import ConfigurationError
from repro.obs.bus import EventBus
from repro.rt.runtime import AsyncioRuntime
from repro.rt.transport import LoopbackTransport, Transport, UdpTransport
from repro.service.timeservice import SecureTimeService

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.live import ClusterIntrospection, LiveTelemetry
    from repro.obs.recorder import ObsConfig
    from repro.service.query import TimeQueryServer


def default_live_params(n: int = 4, f: int = 1, delta: float = 0.02,
                        rho: float = 1e-4, pi: float = 2.0) -> ProtocolParams:
    """Parameters sized for localhost: ``delta`` far above real RTTs
    yet small enough that ``PI`` fits the Section 4 ``K >= 5`` windows."""
    return ProtocolParams.derive(n=n, f=f, delta=delta, rho=rho, pi=pi)


def make_live_clocks(params: ProtocolParams, seed: int,
                     offset_spread: float | None = None
                     ) -> dict[int, LogicalClock]:
    """Deterministic per-node clock models over the wall clock.

    Each node gets a :class:`~repro.clocks.hardware.FixedRateClock` with
    a seed-derived rate inside the drift bound and a seed-derived
    initial offset, so a live cluster starts visibly disagreeing and
    must *converge* — the demo is Sync doing real work, not clocks that
    agree by construction.

    Args:
        offset_spread: Width of the uniform initial-offset range;
            defaults to half the Theorem 5 deviation bound.
    """
    rng = random.Random(seed)
    if offset_spread is None:
        offset_spread = 0.5 * params.bounds().max_deviation
    clocks = {}
    for node in range(params.n):
        rate = 1.0 + rng.uniform(-0.5, 0.5) * params.rho
        offset = rng.uniform(0.0, offset_spread)
        clocks[node] = LogicalClock(FixedRateClock(rho=params.rho, rate=rate),
                                    adj=offset)
    return clocks


@dataclass
class LiveCluster:
    """One wired-up live cluster (runtimes, processes, telemetry).

    Built by :func:`build_cluster`; drive it with a real loop
    (:func:`run_live`) or a virtual one (``loop.run_until``).

    Attributes:
        params: Protocol parameterization.
        loop: The event loop (real or virtual).
        epoch: Loop time corresponding to ``tau = 0``.
        clocks: Logical clocks by node.
        runtimes: The per-node runtimes.
        processes: The per-node ``SyncProcess`` instances.
        transports: Per-node transports (one shared entry under
            loopback).
        bus: The observability event bus telemetry publishes into.
        series: Per-node ``(tau, deviation-from-median)`` samples.
        spread: Cluster ``(tau, max - min)`` samples.
        telemetry: The cluster's
            :class:`~repro.obs.live.LiveTelemetry`, or ``None`` when
            the cluster runs uninstrumented (the default — the sampler
            still records ``series``/``spread``, but no registry, span
            tracer, wall-clock probe, or event capture is attached).
        metrics_server: The admin scrape endpoint after
            :meth:`serve_metrics` (``None`` otherwise).
    """

    params: ProtocolParams
    loop: Any
    epoch: float
    clocks: dict[int, LogicalClock]
    runtimes: dict[int, AsyncioRuntime]
    processes: dict[int, SyncProcess]
    transports: dict[int, Transport]
    bus: EventBus
    series: dict[int, list[tuple[float, float]]] = field(default_factory=dict)
    spread: list[tuple[float, float]] = field(default_factory=list)
    query_servers: dict[int, "TimeQueryServer"] = field(default_factory=dict)
    telemetry: "LiveTelemetry | None" = None
    metrics_server: Any = None
    _sampler: Any = None

    def now(self) -> float:
        """Cluster tau: loop time rebased to the epoch."""
        return self.loop.time() - self.epoch

    # -- telemetry ------------------------------------------------------

    def sample_once(self) -> float:
        """Read every clock, publish telemetry, record series; returns
        the cluster spread at this instant."""
        tau = self.now()
        readings = {node: clock.read(tau) for node, clock in self.clocks.items()}
        ordered = sorted(readings.values())
        mid = len(ordered) // 2
        median = (ordered[mid] if len(ordered) % 2
                  else 0.5 * (ordered[mid - 1] + ordered[mid]))
        for node, value in readings.items():
            deviation = value - median
            self.series.setdefault(node, []).append((tau, deviation))
            self.bus.publish("live.deviation", node=node,
                             clock=value, deviation=deviation)
        spread = ordered[-1] - ordered[0]
        self.spread.append((tau, spread))
        self.bus.publish("live.spread", spread=spread,
                         bound=self.params.bounds().max_deviation)
        if self.telemetry is not None:
            self.telemetry.on_sample(tau, spread=spread)
        return spread

    def start_sampler(self, interval: float) -> None:
        """Arm the periodic telemetry sampler on the loop."""

        def tick() -> None:
            self.sample_once()
            self._sampler = self.loop.call_at(self.loop.time() + interval, tick)

        self._sampler = self.loop.call_at(self.loop.time() + interval, tick)

    def start(self, sample_interval: float = 0.1) -> None:
        """Start every process and the telemetry sampler."""
        for process in self.processes.values():
            process.start()
        self.start_sampler(sample_interval)

    def stop(self) -> None:
        """Cancel timers, close sockets, finalize telemetry (idempotent)."""
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None
        for process in self.processes.values():
            process.cancel_all_timers()
        for server in self.query_servers.values():
            server.close()
        if self.metrics_server is not None:
            self.metrics_server.close()
            self.metrics_server = None
        for transport in self.transports.values():
            close = getattr(transport, "close", None)
            if close is not None:
                close()
        if self.telemetry is not None:
            self.telemetry.finalize()

    # -- service front --------------------------------------------------

    def time_service(self, node: int) -> SecureTimeService:
        """A :class:`SecureTimeService` fronting ``node``'s live clock."""
        return SecureTimeService(self.processes[node], self.params)

    def introspection(self) -> "ClusterIntrospection":
        """The cluster's stats/health view (works without telemetry)."""
        from repro.obs.live import ClusterIntrospection

        return ClusterIntrospection(self, self.telemetry)

    async def serve_queries(self, node: int, host: str = "127.0.0.1",
                            port: int = 0) -> "TimeQueryServer":
        """Open a client-facing :class:`TimeQueryServer` for ``node``.

        The server answers ``now`` / ``validate_timestamp`` / ``epoch``
        queries at estimation cost from the node's live clock, plus the
        ``stats`` / ``health`` admin ops from the cluster introspection
        view; when telemetry is attached, query service times feed the
        node's ``query_latency_seconds`` histogram.  Closed by
        :meth:`stop`.
        """
        from repro.service.query import TimeQueryServer

        registry = (self.telemetry.collector.registry
                    if self.telemetry is not None
                    and self.telemetry.collector is not None else None)
        server = TimeQueryServer(self.time_service(node), node_id=node,
                                 metrics=registry,
                                 introspection=self.introspection())
        await server.start(host=host, port=port)
        self.query_servers[node] = server
        return server

    async def serve_metrics(self, host: str = "127.0.0.1",
                            port: int = 0) -> tuple[str, int]:
        """Open the admin scrape endpoint; returns ``(host, port)``.

        Serves Prometheus text exposition at ``/metrics`` (rendered
        fresh from the registry snapshot on every scrape) and the JSON
        introspection documents at ``/health`` / ``/stats``.  Closed by
        :meth:`stop`.
        """
        from repro.obs.expo import MetricsHttpServer, render_prometheus

        intro = self.introspection()
        server = MetricsHttpServer(
            lambda: render_prometheus(intro.metrics_snapshot()),
            intro.health, intro.stats)
        address = await server.start(host=host, port=port)
        self.metrics_server = server
        return address


def build_cluster(params: ProtocolParams, loop: Any, seed: int = 0,
                  transport: str = "loopback", bus: EventBus | None = None,
                  epoch: float | None = None,
                  loopback_delay: float | None = None,
                  stagger: bool = True,
                  wire: str | dict[int, str] = "binary",
                  telemetry: "bool | ObsConfig" = False) -> LiveCluster:
    """Wire clocks, runtimes, transports, and Sync processes.

    With ``transport="loopback"`` the cluster is complete on return.
    With ``transport="udp"`` the per-node transports still need
    ``await transport.start()`` + ``set_peers`` —
    :func:`run_live` does that; tests use loopback.

    Args:
        loopback_delay: One-way loopback delay; defaults to
            ``params.delta / 2`` (the simulator's ``FixedDelay``
            default, keeping conformance runs aligned).
        stagger: Give node ``i`` a start phase of
            ``i * sync_interval / n`` so first Syncs don't collide.
        wire: Outbound datagram encoding for UDP transports —
            ``"binary"``, ``"json"``, or a per-node mapping (missing
            nodes default to binary).  Decoding always accepts both, so
            mixed-wire clusters interoperate (the rolling-upgrade /
            version-negotiation scenario).
        telemetry: ``False`` (default) leaves the cluster
            uninstrumented — processes never publish protocol events
            and no registry or probe exists, the zero-overhead
            configuration.  ``True`` attaches a
            :class:`~repro.obs.live.LiveTelemetry` with the default
            :class:`~repro.obs.recorder.ObsConfig` (spans + metrics +
            wall-clock Theorem 5 probe); pass an ``ObsConfig`` to
            select subsystems.
    """
    if transport not in ("loopback", "udp"):
        raise ConfigurationError(f"unknown transport {transport!r}")
    epoch = loop.time() if epoch is None else float(epoch)
    bus = bus if bus is not None else EventBus()

    def now() -> float:
        return loop.time() - epoch

    bus.set_clock(now)
    clocks = make_live_clocks(params, seed)

    transports: dict[int, Transport] = {}
    if transport == "loopback":
        delay = (params.delta / 2.0 if loopback_delay is None
                 else float(loopback_delay))
        hub = LoopbackTransport(loop, delay=delay, now=now)
        for node in range(params.n):
            transports[node] = hub
    else:
        for node in range(params.n):
            node_wire = (wire if isinstance(wire, str)
                         else wire.get(node, "binary"))
            transports[node] = UdpTransport(node, now, wire=node_wire)

    runtimes: dict[int, AsyncioRuntime] = {}
    processes: dict[int, SyncProcess] = {}
    for node in range(params.n):
        runtime = AsyncioRuntime(node, clocks[node], transports[node], loop,
                                 epoch=epoch, obs=bus)
        phase = (node * params.sync_interval / params.n) if stagger else 0.0
        process = SyncProcess(runtime, params, start_phase=phase)
        runtime.bind(process)
        process.sync_listeners.append(
            lambda record: bus.publish("live.sync", node=record.node_id,
                                       round_no=record.round_no,
                                       correction=record.correction,
                                       replies=record.replies))
        runtimes[node] = runtime
        processes[node] = process

    cluster = LiveCluster(params=params, loop=loop, epoch=epoch, clocks=clocks,
                          runtimes=runtimes, processes=processes,
                          transports=transports, bus=bus)
    if telemetry:
        from repro.obs.live import LiveTelemetry
        from repro.obs.recorder import ObsConfig

        config = telemetry if isinstance(telemetry, ObsConfig) else None
        cluster.telemetry = LiveTelemetry(params, clocks, bus, config=config)
        cluster.telemetry.attach(cluster)
    return cluster


@dataclass
class LiveReport:
    """Outcome of one :func:`run_live` deployment.

    Attributes:
        params: The parameterization the cluster ran.
        transport: ``"udp"`` or ``"loopback"``.
        duration: Requested wall-clock duration (seconds).
        series: Per-node ``(tau, deviation-from-median)`` samples.
        spread: Cluster ``(tau, spread)`` samples.
        rounds: Completed Sync rounds per node.
        corrections: Applied corrections per node, in order.
        bound: The Theorem 5 deviation bound for ``params``.
        events_published: Total obs-bus events emitted.
        service_readings: One final ``SecureTimeService.now()`` per node.
        query_ports: Query-server port per node (``--serve`` runs only).
        queries_answered: Queries answered per node (``--serve`` only).
        queries_failed: ``ok=False`` replies per node (``--serve`` only).
        queries_malformed: Undecodable query datagrams per node
            (``--serve`` only).
        transport_counters: Per-node transport counters (sent,
            delivered, and the three drop classes) at shutdown; node
            keys are stringified, ``"_"`` for a shared loopback hub.
        telemetry: Whether the run carried a live telemetry plane.
        probe_violations: Wall-clock Theorem 5 probe violations
            (``None`` when telemetry was off).
        metrics_port: The admin scrape port (``None`` when not serving
            metrics).
        metrics_snapshot: Final registry snapshot (``None`` when
            telemetry was off).
    """

    params: ProtocolParams
    transport: str
    duration: float
    series: dict[int, list[tuple[float, float]]]
    spread: list[tuple[float, float]]
    rounds: dict[int, int]
    corrections: dict[int, list[float]]
    bound: float
    events_published: int
    service_readings: dict[int, float]
    query_ports: dict[int, int] = field(default_factory=dict)
    queries_answered: dict[int, int] = field(default_factory=dict)
    queries_failed: dict[int, int] = field(default_factory=dict)
    queries_malformed: dict[int, int] = field(default_factory=dict)
    transport_counters: dict[str, dict[str, int]] = field(default_factory=dict)
    telemetry: bool = False
    probe_violations: int | None = None
    metrics_port: int | None = None
    metrics_snapshot: dict | None = None

    def bounded(self) -> bool:
        """Every node produced samples and every spread is under the
        Theorem 5 bound (the live acceptance criterion)."""
        if len(self.series) < self.params.n:
            return False
        if not all(self.series.get(node) for node in range(self.params.n)):
            return False
        return all(spread <= self.bound for _, spread in self.spread)

    def max_spread(self) -> float:
        """Largest observed cluster spread."""
        return max((s for _, s in self.spread), default=0.0)

    def final_spread(self) -> float:
        """Cluster spread at the last sample."""
        return self.spread[-1][1] if self.spread else 0.0

    def to_dict(self) -> dict:
        """JSON-able summary (the ``repro live --json`` document).

        Per-node deviation series are summarized away (they can run to
        thousands of points); the spread series is kept — it is what
        ``bounded`` is judged on.
        """
        return {
            "params": {"n": self.params.n, "f": self.params.f,
                       "delta": self.params.delta, "rho": self.params.rho,
                       "pi": self.params.pi},
            "transport": self.transport,
            "duration": self.duration,
            "bound": self.bound,
            "bounded": self.bounded(),
            "max_spread": self.max_spread(),
            "final_spread": self.final_spread(),
            "samples": len(self.spread),
            "spread": [[tau, s] for tau, s in self.spread],
            "rounds": {str(n): r for n, r in self.rounds.items()},
            "corrections": {str(n): len(c)
                            for n, c in self.corrections.items()},
            "events_published": self.events_published,
            "service_readings": {str(n): v
                                 for n, v in self.service_readings.items()},
            "query_ports": {str(n): p for n, p in self.query_ports.items()},
            "queries_answered": {str(n): v
                                 for n, v in self.queries_answered.items()},
            "queries_failed": {str(n): v
                               for n, v in self.queries_failed.items()},
            "queries_malformed": {str(n): v
                                  for n, v in self.queries_malformed.items()},
            "transport_counters": self.transport_counters,
            "telemetry": self.telemetry,
            "probe_violations": self.probe_violations,
            "metrics_port": self.metrics_port,
        }


async def _run_cluster_async(params: ProtocolParams, duration: float,
                             seed: int, transport: str,
                             sample_interval: float,
                             bus: EventBus | None,
                             serve_base_port: int | None = None,
                             wire: str | dict[int, str] = "binary",
                             telemetry: "bool | ObsConfig" = False,
                             metrics_port: int | None = None
                             ) -> LiveReport:
    loop = asyncio.get_running_loop()
    cluster = build_cluster(params, loop, seed=seed, transport=transport,
                            bus=bus, wire=wire, telemetry=telemetry)
    metrics_address: tuple[str, int] | None = None
    try:
        if transport == "udp":
            addresses: dict[int, tuple[str, int]] = {}
            for node, udp in cluster.transports.items():
                addresses[node] = await udp.start()
            for udp in cluster.transports.values():
                udp.set_peers(addresses)
        if serve_base_port is not None:
            for node in cluster.processes:
                port = 0 if serve_base_port == 0 else serve_base_port + node
                await cluster.serve_queries(node, port=port)
        if metrics_port is not None:
            metrics_address = await cluster.serve_metrics(port=metrics_port)
        cluster.start(sample_interval=sample_interval)
        await asyncio.sleep(duration)
        cluster.sample_once()  # guarantee a final post-convergence sample
        services = {node: cluster.time_service(node).now()
                    for node in cluster.processes}
        transport_counters = cluster.introspection().transport_counters()
    finally:
        cluster.stop()
    live_telemetry = cluster.telemetry
    return LiveReport(
        params=params,
        transport=transport,
        duration=duration,
        series=cluster.series,
        spread=cluster.spread,
        rounds={node: proc.rounds_completed
                for node, proc in cluster.processes.items()},
        corrections={node: [r.correction for r in proc.sync_records]
                     for node, proc in cluster.processes.items()},
        bound=params.bounds().max_deviation,
        events_published=cluster.bus.events_published,
        service_readings=services,
        query_ports={node: server.address[1]
                     for node, server in cluster.query_servers.items()},
        queries_answered={node: server.queries_answered
                          for node, server in cluster.query_servers.items()},
        queries_failed={node: server.queries_failed
                        for node, server in cluster.query_servers.items()},
        queries_malformed={node: server.malformed_dropped
                           for node, server in cluster.query_servers.items()},
        transport_counters=transport_counters,
        telemetry=live_telemetry is not None,
        probe_violations=(len(live_telemetry.violations)
                          if live_telemetry is not None else None),
        metrics_port=metrics_address[1] if metrics_address else None,
        metrics_snapshot=(live_telemetry.metrics.snapshot()
                          if live_telemetry is not None
                          and live_telemetry.collector is not None else None),
    )


def run_live(nodes: int = 4, f: int = 1, duration: float = 2.0,
             delta: float = 0.02, rho: float = 1e-4, pi: float = 2.0,
             transport: str = "udp", sample_interval: float = 0.1,
             seed: int = 0, bus: EventBus | None = None,
             serve_base_port: int | None = None,
             wire: str | dict[int, str] = "binary",
             telemetry: "bool | ObsConfig" = False,
             metrics_port: int | None = None) -> LiveReport:
    """Deploy a live Sync cluster and run it for ``duration`` seconds.

    Blocking entry point (wraps ``asyncio.run``): spawns ``nodes``
    asyncio runtimes on localhost — real UDP sockets by default — runs
    the paper's Sync protocol on wall-clock timers, and returns the
    telemetry report.  Pass ``bus`` to additionally receive every
    ``live.*`` event (e.g. for JSONL capture).  With ``serve_base_port``
    each node additionally answers client time queries on UDP port
    ``serve_base_port + node`` (see :mod:`repro.service.query`).
    ``wire`` selects each node's outbound datagram encoding (see
    :func:`build_cluster`) — a mixed mapping exercises the rolling
    binary/JSON upgrade path.  ``telemetry`` attaches the live
    telemetry plane (see :func:`build_cluster`); ``metrics_port`` (0 =
    ephemeral) additionally serves the Prometheus/health/stats admin
    endpoint while the cluster runs.
    """
    params = default_live_params(n=nodes, f=f, delta=delta, rho=rho, pi=pi)
    return asyncio.run(_run_cluster_async(params, duration, seed, transport,
                                          sample_interval, bus,
                                          serve_base_port=serve_base_port,
                                          wire=wire, telemetry=telemetry,
                                          metrics_port=metrics_port))


# ---------------------------------------------------------------------------
# Multi-process deployment (``repro live --processes``)
# ---------------------------------------------------------------------------

async def _run_single_node_async(node_index: int, params: ProtocolParams,
                                 duration: float, seed: int, base_port: int,
                                 epoch: float, sample_interval: float,
                                 emit) -> dict:
    loop = asyncio.get_running_loop()
    clock = make_live_clocks(params, seed)[node_index]

    def now() -> float:
        return loop.time() - epoch

    transport = UdpTransport(node_index, now)
    await transport.start(port=base_port + node_index)
    transport.set_peers({node: ("127.0.0.1", base_port + node)
                         for node in range(params.n)})
    runtime = AsyncioRuntime(node_index, clock, transport, loop, epoch=epoch)
    phase = node_index * params.sync_interval / params.n
    process = SyncProcess(runtime, params, start_phase=phase)
    runtime.bind(process)

    # All processes rebase tau to the same monotonic epoch (Linux's
    # CLOCK_MONOTONIC is system-wide, so tau is comparable across
    # processes on one host); wait for it before starting.
    await asyncio.sleep(max(0.0, epoch - loop.time()))
    process.start()
    samples = 0
    try:
        deadline = loop.time() + duration
        while loop.time() < deadline:
            await asyncio.sleep(min(sample_interval, deadline - loop.time()))
            tau = now()
            emit({"node": node_index, "tau": tau, "clock": clock.read(tau)})
            samples += 1
    finally:
        process.cancel_all_timers()
        transport.close()
    return {"node": node_index, "rounds": process.rounds_completed,
            "samples": samples,
            "messages": transport.messages_delivered}


def run_single_node(node_index: int, nodes: int, f: int, duration: float,
                    delta: float = 0.02, rho: float = 1e-4, pi: float = 2.0,
                    base_port: int = 19200, epoch: float = 0.0,
                    sample_interval: float = 0.1, seed: int = 0,
                    emit=None) -> dict:
    """Run ONE node of a multi-process cluster (the child entry point).

    ``emit`` receives one dict per sample (``node``, ``tau``, ``clock``);
    the CLI child prints them as JSON lines for the parent to aggregate.
    Returns a summary dict.
    """
    params = default_live_params(n=nodes, f=f, delta=delta, rho=rho, pi=pi)
    emit = emit if emit is not None else (lambda record: None)
    return asyncio.run(_run_single_node_async(
        node_index, params, duration, seed, base_port, epoch,
        sample_interval, emit))


def aggregate_process_samples(samples: list[dict], nodes: int,
                              sample_interval: float
                              ) -> list[tuple[float, float]]:
    """Bucket per-process clock samples into a cluster spread series.

    Children sample on their own schedules, so samples are grouped into
    ``sample_interval``-wide tau buckets; a bucket contributes a spread
    point only when every node reported in it (per-node latest wins).

    Bucketing uses ``math.floor``, not ``int()``: children that start
    slightly before the shared epoch emit samples with small *negative*
    tau, and ``int()``'s truncation toward zero would fold the whole
    ``(-interval, +interval)`` range into bucket 0, corrupting the
    first spread point with pre-epoch readings.
    """
    buckets: dict[int, dict[int, float]] = {}
    for record in samples:
        bucket = math.floor(record["tau"] / sample_interval)
        buckets.setdefault(bucket, {})[record["node"]] = record["clock"]
    series = []
    for bucket in sorted(buckets):
        readings = buckets[bucket]
        if len(readings) == nodes:
            values = sorted(readings.values())
            series.append((bucket * sample_interval, values[-1] - values[0]))
    return series
