"""A controllable virtual-time event loop for deterministic rt tests.

:class:`VirtualTimeLoop` exposes the tiny slice of the asyncio event
loop API that :class:`~repro.rt.runtime.AsyncioRuntime` and the
transports use — ``time()``, ``call_at()``, ``call_later()`` — but
advances time only when told to (:meth:`VirtualTimeLoop.run_until`),
executing callbacks in deterministic ``(fire_time, insertion_seq)``
order.  That ordering mirrors the simulator's event queue
(:mod:`repro.sim.events`), which is what makes cross-runtime
conformance meaningful: the same protocol code produces the same
decision sequence on either substrate (``tests/test_runtime_conformance.py``).

The loop is synchronous on purpose.  Real deployments use a real
asyncio loop (wall-clock timers, UDP datagrams); tests swap in this
class and drive time by hand, so rt-path tests are as repeatable as
simulator tests — no sleeps, no flakiness, no timing-dependent
assertions.
"""

from __future__ import annotations

import heapq
from typing import Callable


class ScheduledCall:
    """Handle for one scheduled callback (the loop-level timer token).

    Mirrors the surface of :class:`asyncio.TimerHandle` that the rt
    runtime relies on: :meth:`cancel` and the ``when`` attribute.

    Attributes:
        when: Absolute loop time at which the callback fires.
    """

    __slots__ = ("when", "_seq", "_callback", "_cancelled")

    def __init__(self, when: float, seq: int,
                 callback: Callable[[], None]) -> None:
        self.when = when
        self._seq = seq
        self._callback = callback
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._cancelled = True

    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called (asyncio-compatible)."""
        return self._cancelled

    def __lt__(self, other: "ScheduledCall") -> bool:
        return (self.when, self._seq) < (other.when, other._seq)


class VirtualTimeLoop:
    """Deterministic replacement for an asyncio loop's timer surface.

    Time starts at 0.0 and only moves inside :meth:`run_until` /
    :meth:`run_until_idle`.  Callbacks scheduled for the same instant
    run in insertion order, exactly like the simulator's ``(time, seq)``
    event queue.
    """

    def __init__(self) -> None:
        self._time = 0.0
        self._seq = 0
        self._heap: list[ScheduledCall] = []

    def time(self) -> float:
        """Current virtual time (seconds since loop creation)."""
        return self._time

    def call_at(self, when: float, callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` at absolute virtual time ``when``.

        A ``when`` in the past fires at the current time (asyncio
        semantics), never rewinds the clock.
        """
        call = ScheduledCall(max(float(when), self._time), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, call)
        return call

    def call_later(self, delay: float, callback: Callable[[], None]) -> ScheduledCall:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        return self.call_at(self._time + float(delay), callback)

    def run_until(self, deadline: float) -> int:
        """Advance time to ``deadline``, firing every due callback.

        Callbacks may schedule further callbacks; anything landing at or
        before ``deadline`` runs in this call.  On return the loop time
        equals ``deadline`` even if the queue emptied earlier (matching
        ``Simulator.run(until=...)``).  Returns the number of callbacks
        executed.
        """
        executed = 0
        while self._heap and self._heap[0].when <= deadline:
            call = heapq.heappop(self._heap)
            if call._cancelled:
                continue
            self._time = call.when
            call._callback()
            executed += 1
        self._time = max(self._time, float(deadline))
        return executed

    def run_until_idle(self) -> int:
        """Run until no scheduled callbacks remain; returns the count."""
        executed = 0
        while self._heap:
            call = heapq.heappop(self._heap)
            if call._cancelled:
                continue
            self._time = call.when
            call._callback()
            executed += 1
        return executed

    @property
    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled callbacks."""
        return sum(1 for call in self._heap if not call._cancelled)
