"""The real-time runtime: protocol code on asyncio timers and transports.

:class:`AsyncioRuntime` is the deployment-side twin of
:class:`repro.sim.runtime.SimRuntime`.  It implements the same
:class:`~repro.runtime.api.NodeRuntime` seam, so the *identical*
protocol classes — :class:`~repro.core.sync.SyncProcess` and every
``repro.protocols`` implementation — run unmodified over real timers
and real sockets:

* ``real_now()`` is the event loop's clock, rebased to an epoch so
  ``tau`` starts near zero (hardware-clock models expect a small
  origin-anchored domain);
* ``set_local_timer`` converts a *local clock* duration to an absolute
  fire time through the node's hardware clock — exactly the formula
  ``SimRuntime`` uses — and arms ``loop.call_at``;
* ``send`` hands the payload to a :mod:`repro.rt.transport`.

The ``loop`` may be a real asyncio event loop (wall-clock deployment)
or a :class:`~repro.rt.virtualtime.VirtualTimeLoop` (deterministic
tests); both expose ``time()`` and ``call_at()``.

Timer cancellation follows the queue-honest contract of
:mod:`repro.runtime.api` uniformly: asyncio's own handles would report
``cancelled() == True`` after a cancel-after-fire, so
:class:`RtTimerHandle` tracks the fired state itself and makes
cancel-after-fire and double-cancel no-ops, byte-for-byte matching
``SimRuntime``'s :class:`~repro.sim.runtime.LocalTimer` semantics
(verified by ``tests/test_runtime_timers.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.runtime.api import MessageHandler, NodeRuntime, TimerHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clocks.logical import LogicalClock
    from repro.rt.transport import Transport


class RtTimerHandle(TimerHandle):
    """Timer token over an asyncio (or virtual-loop) handle.

    Keeps its own ``fired`` flag because asyncio's ``TimerHandle``
    cannot distinguish "cancelled while pending" from "cancelled after
    the callback ran" — and the runtime contract requires the latter to
    be a no-op that leaves ``cancelled`` False.

    Attributes:
        tag: Diagnostic label of the timer.
    """

    __slots__ = ("tag", "_handle", "_fired", "_cancelled")

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self._handle: Any = None
        self._fired = False
        self._cancelled = False

    def cancel(self) -> None:
        """Cancel if still pending; after firing (or twice) a no-op."""
        if self._fired or self._cancelled:
            return
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class AsyncioRuntime(NodeRuntime):
    """A protocol node running on an event loop and a transport.

    Args:
        node_id: Integer identity of this node.
        clock: The node's logical clock; its hardware model maps loop
            time (rebased by ``epoch``) to hardware time, so a
            :class:`~repro.clocks.hardware.FixedRateClock` deployed here
            simply ticks with the wall.
        transport: Message fabric (:class:`~repro.rt.transport.LoopbackTransport`
            or :class:`~repro.rt.transport.UdpTransport`).
        loop: Real asyncio loop or
            :class:`~repro.rt.virtualtime.VirtualTimeLoop`.
        epoch: Loop time treated as ``tau = 0``; defaults to the loop's
            current time at construction.  All runtimes of one cluster
            must share an epoch or their ``tau`` scales diverge.
        obs: Optional observability event bus (advisory only).
    """

    __slots__ = ("node_id", "clock", "obs", "transport", "loop", "epoch")

    def __init__(self, node_id: int, clock: "LogicalClock",
                 transport: "Transport", loop: Any,
                 epoch: float | None = None, obs: Any | None = None) -> None:
        self.node_id = node_id
        self.clock = clock
        self.obs = obs
        self.transport = transport
        self.loop = loop
        self.epoch = loop.time() if epoch is None else float(epoch)

    # -- time ---------------------------------------------------------------

    def real_now(self) -> float:
        """Loop time rebased to the cluster epoch (the deployment tau)."""
        return self.loop.time() - self.epoch

    # -- timers -------------------------------------------------------------

    def set_local_timer(self, duration: float, callback: Callable[[], None],
                        tag: str = "timer") -> TimerHandle:
        """Arm ``callback`` after ``duration`` of *local* clock.

        The local duration is mapped to an absolute real fire time via
        the hardware clock (same formula as ``SimRuntime``), then onto
        ``loop.call_at`` in loop-time coordinates.
        """
        fire_at = self.clock.hardware.real_time_after(self.real_now(), duration)
        handle = RtTimerHandle(tag)

        def fire() -> None:
            handle._fired = True
            callback()

        handle._handle = self.loop.call_at(self.epoch + fire_at, fire)
        return handle

    # -- messaging ----------------------------------------------------------

    def send(self, recipient: int, payload: Any) -> None:
        self.transport.send(self.node_id, recipient, payload)

    def neighbors(self) -> list[int]:
        return self.transport.neighbors(self.node_id)

    def bind(self, handler: MessageHandler) -> None:
        self.transport.bind(self.node_id, handler)
