"""Drift-schedule generators for hardware clocks.

These helpers build the ``(start_tau, rate)`` schedules consumed by
:class:`repro.clocks.hardware.PiecewiseRateClock`.  They cover the three
drift regimes the experiments exercise:

* **Extremal drift** — the adversary's best case under eq. (2): a clock
  pinned at ``1+rho`` or ``1/(1+rho)`` (``constant_rate``).
* **Oscillating drift** — rate flips between the extremes, which
  maximizes *relative* drift between a pair of clocks over short windows
  (``alternating_schedule``).
* **Wander** — a bounded random walk of the rate, the realistic model of
  crystal-oscillator behaviour (``wander_schedule``).
"""

from __future__ import annotations

import random

from repro.errors import ClockError


def clamp_rate(rate: float, rho: float) -> float:
    """Clamp ``rate`` into the drift envelope ``[1/(1+rho), 1+rho]``."""
    return min(1.0 + rho, max(1.0 / (1.0 + rho), rate))


def constant_rate(rho: float, sign: int = +1) -> list[tuple[float, float]]:
    """Schedule for a clock pinned at an extreme of the drift envelope.

    Args:
        rho: Drift bound.
        sign: ``+1`` for the fast extreme ``1+rho``, ``-1`` for the slow
            extreme ``1/(1+rho)``, ``0`` for a perfect clock.
    """
    if sign > 0:
        rate = 1.0 + rho
    elif sign < 0:
        rate = 1.0 / (1.0 + rho)
    else:
        rate = 1.0
    return [(0.0, rate)]


def alternating_schedule(rho: float, period: float, horizon: float,
                         start_fast: bool = True) -> list[tuple[float, float]]:
    """Rate flips between the two extremes every ``period`` seconds.

    Two clocks given opposite phases of this schedule achieve the
    worst-case mutual drift allowed by eq. (2) on every half-period.

    Args:
        rho: Drift bound.
        period: Real-time length of each constant-rate stretch.
        horizon: Generate breakpoints up to this real time.
        start_fast: Whether the first stretch runs fast.
    """
    if period <= 0:
        raise ClockError(f"period must be positive, got {period}")
    fast, slow = 1.0 + rho, 1.0 / (1.0 + rho)
    schedule: list[tuple[float, float]] = []
    t, fast_now = 0.0, start_fast
    while t <= horizon:
        schedule.append((t, fast if fast_now else slow))
        fast_now = not fast_now
        t += period
    return schedule


def wander_schedule(rho: float, step: float, horizon: float, rng: random.Random,
                    sigma: float | None = None) -> list[tuple[float, float]]:
    """Bounded random walk of the clock rate (oscillator wander).

    Every ``step`` seconds the rate takes a Gaussian increment and is
    clamped back into the drift envelope, giving a realistic
    slowly-varying drift that still satisfies eq. (2) everywhere.

    Args:
        rho: Drift bound.
        step: Real-time spacing of rate changes.
        horizon: Generate breakpoints up to this real time.
        rng: Random stream for the walk.
        sigma: Standard deviation of each rate increment; defaults to
            ``rho / 4`` so the walk explores the envelope without
            saturating instantly.
    """
    if step <= 0:
        raise ClockError(f"step must be positive, got {step}")
    if sigma is None:
        sigma = rho / 4.0
    schedule: list[tuple[float, float]] = []
    rate = clamp_rate(1.0 + rng.uniform(-rho / 2.0, rho / 2.0), rho)
    t = 0.0
    while t <= horizon:
        schedule.append((t, rate))
        rate = clamp_rate(rate + rng.gauss(0.0, sigma), rho)
        t += step
    return schedule
