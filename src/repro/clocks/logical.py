"""Logical clocks (the paper's ``C_p = H_p + adj_p``).

Definition 1 decomposes a processor's clock into an unresettable
hardware clock ``H_p`` and an adjustment variable ``adj_p``.  The only
operations a processor may perform are reading ``H_p + adj_p`` and
adding to ``adj_p`` — this class enforces exactly that interface.  The
adversary, while in control of a node, may also overwrite ``adj``
arbitrarily (:meth:`LogicalClock.hijack_set`).

For analysis, the *bias* of a clock at real time ``tau`` is
``B_p(tau) = C_p(tau) - tau`` (Section 4.2); :meth:`LogicalClock.bias`
computes it directly.
"""

from __future__ import annotations

from repro.clocks.hardware import HardwareClock


class LogicalClock:
    """A hardware clock plus a resettable adjustment variable.

    Attributes:
        hardware: The underlying drift-bounded hardware clock.
        adj: Current adjustment value (``adj_p``).
        adjustments: History of ``(real_time, delta, new_adj)`` entries,
            recorded for discontinuity/accuracy measurement.
    """

    def __init__(self, hardware: HardwareClock, adj: float = 0.0) -> None:
        self.hardware = hardware
        self.adj = float(adj)
        self.adjustments: list[tuple[float, float, float]] = []

    def read(self, tau: float) -> float:
        """Clock value ``C(tau) = H(tau) + adj``."""
        return self.hardware.read(tau) + self.adj

    def bias(self, tau: float) -> float:
        """Bias ``B(tau) = C(tau) - tau`` (Section 4.2)."""
        return self.read(tau) - tau

    def adjust(self, tau: float, delta: float) -> None:
        """Add ``delta`` to the adjustment variable (the protocol's move).

        ``tau`` is recorded for the adjustment history; the clock itself
        only depends on the new ``adj`` value.
        """
        self.adj += float(delta)
        self.adjustments.append((tau, float(delta), self.adj))

    def hijack_set(self, tau: float, new_adj: float) -> None:
        """Overwrite ``adj`` outright — adversary-only operation.

        Recorded in the history with the implied delta so traces remain
        a complete account of every clock discontinuity.
        """
        delta = float(new_adj) - self.adj
        self.adj = float(new_adj)
        self.adjustments.append((tau, delta, self.adj))

    def set_value(self, tau: float, target_clock: float) -> None:
        """Set ``adj`` so that the clock reads ``target_clock`` at ``tau``.

        Convenience used by adversary strategies ("reset the victim's
        clock to value X") and by scenario initialization.
        """
        self.hijack_set(tau, target_clock - self.hardware.read(tau))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LogicalClock(adj={self.adj:.9f}, hw={type(self.hardware).__name__})"
