"""Named hardware-clock populations (the clock-model registry).

A *clock model* is a factory ``(node, params, rng, horizon) ->
HardwareClock`` building node ``i``'s hardware clock for one run.  The
models here are registered by name so scenarios and JSON configs can
select them declaratively (``"clocks": "wander"``) and remain picklable
for process-pool fan-out; arbitrary callables remain usable from Python
for one-off experiments.

Registered models:

* ``wander`` — independent bounded random-walk drift (the realistic
  crystal-oscillator model; the default population).
* ``extremal`` — clocks pinned at alternating drift extremes, the
  worst case eq. (2) permits.
* ``perfect`` — driftless clocks (the Section 4.3 simplified setting).
* ``clique-extremal`` — the Section 5 two-clique population: the first
  half of the nodes runs fast, the second half slow, so the cliques'
  clocks diverge at the maximal mutual rate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.clocks.drift import wander_schedule
from repro.clocks.hardware import FixedRateClock, HardwareClock, PiecewiseRateClock
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import random

    from repro.core.params import ProtocolParams


ClockFactory = Callable[[int, "ProtocolParams", "random.Random", float], HardwareClock]
"""Builds node ``i``'s hardware clock: ``(node, params, rng, horizon)``."""


CLOCK_MODELS: dict[str, ClockFactory] = {}
"""Registry of named clock populations (see :func:`register_clock_model`)."""


def register_clock_model(name: str) -> Callable[[ClockFactory], ClockFactory]:
    """Register a clock factory under ``name`` (decorator).

    Registered models are reachable from declarative scenarios and JSON
    configs; re-registering a name overwrites it (deliberate, so tests
    can shadow models).
    """

    def decorator(factory: ClockFactory) -> ClockFactory:
        CLOCK_MODELS[name] = factory
        return factory

    return decorator


def clock_model(name: str) -> ClockFactory:
    """Look up a registered clock model by name.

    Raises:
        ConfigurationError: Naming the unknown model and listing the
            known ones.
    """
    try:
        return CLOCK_MODELS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown clock model {name!r}; known: {sorted(CLOCK_MODELS)}"
        ) from None


def registered_clock_models() -> list[str]:
    """Sorted names of all registered clock models."""
    return sorted(CLOCK_MODELS)


@register_clock_model("wander")
def wander_clocks(node: int, params: "ProtocolParams", rng: "random.Random",
                  horizon: float) -> HardwareClock:
    """Default clock population: independent bounded random-walk drift."""
    schedule = wander_schedule(params.rho, step=params.sync_interval, horizon=horizon, rng=rng)
    return PiecewiseRateClock(params.rho, schedule)


@register_clock_model("extremal")
def extremal_clocks(node: int, params: "ProtocolParams", rng: "random.Random",
                    horizon: float) -> HardwareClock:
    """Worst-case population: clocks pinned at alternating drift extremes.

    Even nodes run at ``1 + rho``, odd nodes at ``1/(1+rho)`` — the
    maximum mutual drift eq. (2) permits, sustained forever.
    """
    rate = (1.0 + params.rho) if node % 2 == 0 else 1.0 / (1.0 + params.rho)
    return FixedRateClock(params.rho, rate=rate)


@register_clock_model("perfect")
def perfect_clocks(node: int, params: "ProtocolParams", rng: "random.Random",
                   horizon: float) -> HardwareClock:
    """Driftless clocks (the Section 4.3 simplified analysis setting)."""
    return FixedRateClock(params.rho, rate=1.0)


@register_clock_model("clique-extremal")
def clique_extremal_clocks(node: int, params: "ProtocolParams", rng: "random.Random",
                           horizon: float) -> HardwareClock:
    """Per-clique drift extremes for the Section 5 counterexample.

    Nodes in the first half of the id space (the first clique) run at
    ``1 + rho``; the rest run at ``1/(1+rho)``, so the two cliques'
    clocks diverge at the maximal mutual rate while each clique stays
    internally synchronized.
    """
    rate = (1.0 + params.rho) if node < params.n // 2 else 1.0 / (1.0 + params.rho)
    return FixedRateClock(params.rho, rate=rate)
