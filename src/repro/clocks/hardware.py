"""Hardware-clock models (the paper's ``H_p``).

Definition 1 of the paper models each processor's hardware clock as a
smooth, monotonically increasing function of real time, with drift
bounded by ``rho`` (eq. 2):

    (t2 - t1) / (1 + rho)  <=  H(t2) - H(t1)  <=  (t2 - t1) * (1 + rho)

All clock models here are piecewise-linear in real time with per-segment
rates confined to ``[1/(1+rho), 1+rho]``, which satisfies eq. (2) for
every pair of times (each segment does, and the bound composes over
concatenation).  Piecewise-linear clocks are exactly invertible, which
the simulator needs to schedule events at *local* clock targets.

Three concrete models are provided:

* :class:`FixedRateClock` — a constant rate, the classic drift model.
* :class:`PiecewiseRateClock` — an explicit rate schedule, used to model
  adversarially chosen drift (the worst case of eq. 2) and temperature
  steps.
* random-walk "wander" clocks are built by feeding
  :func:`repro.clocks.drift.wander_schedule` into
  :class:`PiecewiseRateClock`.
"""

from __future__ import annotations

import bisect
import math
from typing import Sequence

from repro.errors import ClockError


class HardwareClock:
    """Abstract hardware clock: a monotone map from real to local time.

    Subclasses must implement :meth:`read`, :meth:`real_time_at`, and
    :meth:`rate_at`.  ``origin`` is the earliest real time at which the
    clock is defined (simulations start at 0).
    """

    def __init__(self, rho: float, origin: float = 0.0) -> None:
        if rho < 0:
            raise ClockError(f"drift bound rho must be non-negative, got {rho}")
        self.rho = float(rho)
        self.origin = float(origin)

    # -- required interface -------------------------------------------------

    def read(self, tau: float) -> float:
        """Hardware time ``H(tau)`` at real time ``tau``."""
        raise NotImplementedError

    def real_time_at(self, h: float) -> float:
        """Inverse map: the real time at which the clock reads ``h``."""
        raise NotImplementedError

    def rate_at(self, tau: float) -> float:
        """Instantaneous rate ``dH/dtau`` at real time ``tau``."""
        raise NotImplementedError

    # -- derived helpers -----------------------------------------------------

    def real_time_after(self, tau: float, local_duration: float) -> float:
        """Real time at which ``local_duration`` units of clock have elapsed.

        This is the primitive behind local timers: "wake me after
        ``SyncInt`` units of my own clock, starting now".
        """
        if local_duration < 0:
            raise ClockError(f"local_duration must be non-negative, got {local_duration}")
        return self.real_time_at(self.read(tau) + local_duration)

    def min_rate(self) -> float:
        """Smallest rate permitted by the drift bound."""
        return 1.0 / (1.0 + self.rho)

    def max_rate(self) -> float:
        """Largest rate permitted by the drift bound."""
        return 1.0 + self.rho

    def _check_rate(self, rate: float) -> float:
        lo, hi = self.min_rate(), self.max_rate()
        # Allow a hair of float slack so rates computed as 1/(1+rho) pass.
        slack = 1e-12 * max(1.0, hi)
        if not (lo - slack <= rate <= hi + slack):
            raise ClockError(
                f"rate {rate} outside drift envelope [{lo}, {hi}] for rho={self.rho}"
            )
        return float(rate)

    def _check_domain(self, tau: float) -> None:
        if tau < self.origin - 1e-12:
            raise ClockError(f"clock read at tau={tau} before origin {self.origin}")


class FixedRateClock(HardwareClock):
    """A clock that runs at a constant rate relative to real time.

    Args:
        rho: Drift bound; ``rate`` must lie in ``[1/(1+rho), 1+rho]``.
        rate: Constant rate ``dH/dtau``.
        offset: Hardware reading at ``origin`` (``H(origin)``).
        origin: Real time at which the clock starts.
    """

    def __init__(self, rho: float, rate: float = 1.0, offset: float = 0.0,
                 origin: float = 0.0) -> None:
        super().__init__(rho, origin)
        self.rate = self._check_rate(rate)
        self.offset = float(offset)

    def read(self, tau: float) -> float:
        self._check_domain(tau)
        return self.offset + (tau - self.origin) * self.rate

    def real_time_at(self, h: float) -> float:
        if h < self.offset - 1e-12:
            raise ClockError(f"hardware value {h} precedes clock start value {self.offset}")
        return self.origin + (h - self.offset) / self.rate

    def rate_at(self, tau: float) -> float:
        self._check_domain(tau)
        return self.rate


class PiecewiseRateClock(HardwareClock):
    """A clock whose rate changes at given real-time breakpoints.

    The schedule is a sequence of ``(start_tau, rate)`` pairs, sorted by
    ``start_tau``; the final rate extends to infinity.  Between
    breakpoints the clock is linear, so both directions of the time map
    are exact.

    Args:
        rho: Drift bound; every rate must lie in ``[1/(1+rho), 1+rho]``.
        schedule: Non-empty ``(start_tau, rate)`` pairs; the first
            ``start_tau`` defines the clock's origin.
        offset: Hardware reading at the origin.
    """

    def __init__(self, rho: float, schedule: Sequence[tuple[float, float]],
                 offset: float = 0.0) -> None:
        if not schedule:
            raise ClockError("PiecewiseRateClock requires a non-empty schedule")
        starts = [float(s) for s, _ in schedule]
        if any(b <= a for a, b in zip(starts, starts[1:])):
            raise ClockError("schedule start times must be strictly increasing")
        super().__init__(rho, origin=starts[0])
        self._starts = starts
        self._rates = [self._check_rate(r) for _, r in schedule]
        self.offset = float(offset)
        # Cumulative hardware time at each breakpoint.
        self._h_at_start = [self.offset]
        for i in range(1, len(starts)):
            span = starts[i] - starts[i - 1]
            self._h_at_start.append(self._h_at_start[-1] + span * self._rates[i - 1])
        # Last segment served: simulation reads are near-monotone in tau,
        # so the hint usually hits and skips the bisect entirely.  Pure
        # cache — resolved segments (and thus readings) are unchanged.
        self._seg_hint = 0

    def _segment_for_tau(self, tau: float) -> int:
        starts = self._starts
        i = self._seg_hint
        if starts[i] <= tau:
            j = i + 1
            if j == len(starts) or tau < starts[j]:
                return i
        i = bisect.bisect_right(starts, tau) - 1
        if i < 0:
            i = 0
        self._seg_hint = i
        return i

    def read(self, tau: float) -> float:
        # Hot path: domain check and segment lookup are inlined (the
        # helper-based equivalent costs two extra calls per read, and a
        # simulation reads clocks on every message and sample).
        starts = self._starts
        i = self._seg_hint
        if starts[i] <= tau:
            j = i + 1
            if j != len(starts) and tau >= starts[j]:
                i = bisect.bisect_right(starts, tau, j) - 1
                self._seg_hint = i
        else:
            if tau < starts[0] - 1e-12:
                raise ClockError(f"clock read at tau={tau} before origin {self.origin}")
            i = bisect.bisect_right(starts, tau, 0, i) - 1
            if i < 0:
                i = 0
            self._seg_hint = i
        return self._h_at_start[i] + (tau - starts[i]) * self._rates[i]

    def real_time_at(self, h: float) -> float:
        if h < self.offset - 1e-12:
            raise ClockError(f"hardware value {h} precedes clock start value {self.offset}")
        i = max(0, bisect.bisect_right(self._h_at_start, h) - 1)
        return self._starts[i] + (h - self._h_at_start[i]) / self._rates[i]

    def rate_at(self, tau: float) -> float:
        self._check_domain(tau)
        return self._rates[self._segment_for_tau(tau)]

    @property
    def breakpoints(self) -> list[float]:
        """Real times at which the rate changes (read-only copy)."""
        return list(self._starts)


class QuantizedClock(HardwareClock):
    """Reading-granularity wrapper: a clock that ticks in steps.

    Real hardware clocks are read at a finite granularity (a register
    incremented every ``tick`` time units).  The paper's model assumes
    smooth clocks; quantization is an implementation artifact that
    effectively adds up to ``tick`` to the reading error, and the
    ablation bench measures exactly that.  The wrapper quantizes
    *readings* (``read`` returns multiples of ``tick``); inverse
    queries and rates defer to the underlying continuous clock, which
    keeps local-duration timers exact (a real system's timer interrupt
    also runs off the raw oscillator, not the quantized register).

    Note: a quantized reading is a step function, so the eq. (2) lower
    bound holds only up to an additive ``tick`` — the model deviation
    documented in DESIGN.md and absorbed by enlarging ``epsilon``.

    Args:
        inner: The underlying smooth clock.
        tick: Reading granularity (must be positive).
    """

    def __init__(self, inner: HardwareClock, tick: float) -> None:
        if tick <= 0:
            raise ClockError(f"tick must be positive, got {tick}")
        super().__init__(inner.rho, inner.origin)
        self.inner = inner
        self.tick = float(tick)

    def read(self, tau: float) -> float:
        return math.floor(self.inner.read(tau) / self.tick) * self.tick

    def real_time_at(self, h: float) -> float:
        """Earliest real time at which the quantized reading reaches ``h``."""
        return self.inner.real_time_at(h)

    def real_time_after(self, tau: float, local_duration: float) -> float:
        # Timers run off the raw oscillator: exact, not quantized.
        return self.inner.real_time_after(tau, local_duration)

    def rate_at(self, tau: float) -> float:
        return self.inner.rate_at(tau)
