"""Clock substrate: drift-bounded hardware clocks and logical clocks.

Implements Definition 1 and eq. (2) of the paper: hardware clocks are
smooth monotone functions of real time with rate confined to
``[1/(1+rho), 1+rho]``; logical clocks add a resettable adjustment.
"""

from repro.clocks.drift import (
    alternating_schedule,
    clamp_rate,
    constant_rate,
    wander_schedule,
)
from repro.clocks.factories import (
    CLOCK_MODELS,
    ClockFactory,
    clique_extremal_clocks,
    clock_model,
    extremal_clocks,
    perfect_clocks,
    register_clock_model,
    registered_clock_models,
    wander_clocks,
)
from repro.clocks.hardware import (
    FixedRateClock,
    HardwareClock,
    PiecewiseRateClock,
    QuantizedClock,
)
from repro.clocks.logical import LogicalClock

__all__ = [
    "HardwareClock",
    "FixedRateClock",
    "PiecewiseRateClock",
    "QuantizedClock",
    "LogicalClock",
    "constant_rate",
    "alternating_schedule",
    "wander_schedule",
    "clamp_rate",
    "CLOCK_MODELS",
    "ClockFactory",
    "clock_model",
    "register_clock_model",
    "registered_clock_models",
    "wander_clocks",
    "extremal_clocks",
    "perfect_clocks",
    "clique_extremal_clocks",
]
