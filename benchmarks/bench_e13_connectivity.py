"""E13 — Section 5 conjecture: which incomplete graphs suffice?

The paper conjectures "it is sufficient that the non-faulty processors
form a sufficiently connected subgraph", proves nothing either way, and
gives one counterexample (two cliques + matching, see E6).  This
experiment maps the empirical boundary with worst-case (extremal)
drift populations:

* random connected graphs over an edge-probability sweep — the
  well-expanding regime the conjecture hopes for;
* the ring — minimum degree that still feeds the f+1 statistics;
* the two-clique counterexample and a barbell (two cliques, ONE bridge
  edge) — high local connectivity, no expansion;
* the full mesh control.

Expected shape: every topology with decent *expansion* stays within the
Theorem 5 bound (supporting the conjecture), while the clique-pair
family diverges regardless of its (3f+1) connectivity — expansion, not
connectivity, looks like the right hypothesis.  Node connectivity is
reported via networkx for context.
"""

from __future__ import annotations

import random

import networkx as nx
from _util import emit, once

from repro.metrics.report import table
from repro.net.topology import Topology, full_mesh, random_connected, ring, two_cliques
from repro.runner.builders import benign_scenario, default_params, warmup_for
from repro.runner.experiment import run
from repro.clocks.hardware import FixedRateClock


def half_split_clocks(n: int):
    """Worst-case drift *assignment*: the first half of the nodes runs
    fast, the second half slow, aligning the drift boundary with the
    sparse cut of the clique-family topologies (node labels 0..n/2-1
    form one clique).  For random graphs the labels carry no structure,
    so the same assignment lands on a dense random cut."""

    def factory(node, params, rng, horizon):
        rate = (1.0 + params.rho) if node < n // 2 else 1.0 / (1.0 + params.rho)
        return FixedRateClock(params.rho, rate=rate)

    return factory


def barbell(clique: int) -> Topology:
    """Two cliques joined by a single bridge edge."""
    topo = Topology(2 * clique)
    for base in (0, clique):
        for u in range(base, base + clique):
            for v in range(u + 1, base + clique):
                topo.add_edge(u, v)
    topo.add_edge(0, clique)
    return topo


def to_networkx(topo: Topology) -> "nx.Graph":
    graph = nx.Graph()
    graph.add_nodes_from(range(topo.n))
    for u in range(topo.n):
        for v in topo.neighbors(u):
            if u < v:
                graph.add_edge(u, v)
    return graph


def run_e13():
    f = 1
    duration = 30.0
    rows = []

    def measure(label, topo, n, rho=2e-3, seed=1):
        params = default_params(n=n, f=f, rho=rho, pi=2.0)
        bound = params.bounds().max_deviation
        scenario = benign_scenario(params, duration=duration, seed=seed,
                                   topology=topo,
                                   clock_factory=half_split_clocks(n))
        result = run(scenario)
        deviation = result.max_deviation(warmup_for(params))
        graph = to_networkx(topo)
        rows.append([
            label, n, min(topo.degree(u) for u in range(n)),
            nx.node_connectivity(graph),
            deviation, bound,
            "BOUNDED" if deviation <= bound else "DIVERGED",
        ])

    n = 10
    for p in (0.35, 0.5, 0.8):
        topo = random_connected(n, p, random.Random(42), min_degree=2 * f + 1)
        measure(f"random p={p}", topo, n)
    measure("ring", ring(n), n)
    measure("full mesh", full_mesh(n), n)
    measure("two cliques + matching (Sec. 5)", two_cliques(f), 2 * (3 * f + 1))
    measure("barbell (one bridge)", barbell(3 * f + 1), 2 * (3 * f + 1))
    return rows


def test_e13_connectivity_boundary(benchmark):
    rows = once(benchmark, run_e13)
    emit("e13_connectivity", table(
        ["topology", "n", "min_degree", "node_connectivity", "measured_dev",
         "bound", "verdict"],
        rows,
        title="E13: topology sweep under worst-case drift (f=1) — expansion, "
              "not bare connectivity, separates bounded from diverged",
        precision=4,
    ))
    by_name = {row[0]: row for row in rows}
    assert by_name["full mesh"][6] == "BOUNDED"
    for p in (0.35, 0.5, 0.8):
        assert by_name[f"random p={p}"][6] == "BOUNDED"
    assert by_name["two cliques + matching (Sec. 5)"][6] == "DIVERGED"
    assert by_name["barbell (one bridge)"][6] == "DIVERGED"
    # The counterexample has HIGHER node connectivity than the random
    # graphs that succeed — bare k-connectivity is the wrong measure.
    assert (by_name["two cliques + matching (Sec. 5)"][3]
            >= by_name["random p=0.35"][3] - 1)
