"""E3 — Lemma 7 / Figure 3: the good-set bias envelope shrinks per T.

Regenerates the envelope-trajectory picture of Figure 3: starting the
cluster with a wide initial bias spread (just inside WayOff), the
spread of the good processors must contract by at least the Lemma 7
factor (7/8 per interval, plus the 2*epsilon + 2*rho*T allowance) each
analysis interval until it reaches the ~16*epsilon floor.  Expected
shape: geometric decay then a flat floor, every step within the lemma
bound.
"""

from __future__ import annotations

from _util import emit, once

from repro.core.analysis import envelope_trajectory
from repro.metrics.report import check_mark, table
from repro.runner.builders import benign_scenario, default_params
from repro.runner.experiment import run


def run_e3():
    params = default_params(n=7, f=2, pi=4.0)
    spread = 0.8 * params.way_off  # wide but credible start
    scenario = benign_scenario(params, duration=8.0, seed=3,
                               initial_offset_spread=spread)
    result = run(scenario)
    steps = envelope_trajectory(result.samples, result.corruptions, params,
                                floor_slack=2.0 * params.epsilon)
    rows = []
    for step in steps:
        rows.append([
            step.index, step.t_start, step.width_start, step.width_end,
            step.lemma_bound, "floor" if step.at_floor else "shrink",
            check_mark(step.holds),
        ])
    return rows, params


def test_e3_envelope_shrinkage(benchmark):
    rows, params = once(benchmark, lambda: run_e3())
    emit("e3_envelope", table(
        ["interval", "t_start", "width_start", "width_end", "lemma7_bound",
         "regime", "holds"],
        rows,
        title=(f"E3: good-set bias envelope per interval T={params.t_interval:.3g} "
               f"(start spread {0.8 * params.way_off:.3g}, floor ~16e={16 * params.epsilon:.3g})"),
        precision=4,
    ))
    assert rows, "expected at least one envelope step"
    for row in rows:
        assert row[-1] == "OK"
    # The trajectory must actually contract from its wide start to near
    # the floor by the end.
    assert rows[0][2] > 10 * rows[-1][3] or rows[-1][3] <= 16 * params.epsilon * 2
