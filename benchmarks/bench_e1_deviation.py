"""E1 — Theorem 5(i): synchronization under the mobile Byzantine workload.

Regenerates the synchronization table the paper's Theorem 5(i) implies:
for network sizes n = 3f+1 .. and the full rotating-adversary workload,
the measured maximum good-set deviation against the theoretical bound
``16e + 18pT + 4C``.  Expected shape: measured << bound, bound scales
with epsilon (i.e. with delta), and the guarantee holds at every size.
"""

from __future__ import annotations

from _util import campaign_records, emit, once

from repro.metrics.report import check_mark, ratio, table
from repro.runner.builders import default_params, mobile_byzantine_scenario


CONFIGS = [
    # (n, f, delta, seeds)
    (4, 1, 0.005, (1, 2)),
    (7, 2, 0.005, (1, 2)),
    (10, 3, 0.005, (1,)),
    (7, 2, 0.001, (1,)),   # tighter delta -> tighter bound
    (7, 2, 0.020, (1,)),   # looser delta -> looser bound
]


def run_e1():
    scenarios, groups = [], []
    for n, f, delta, seeds in CONFIGS:
        params = default_params(n=n, f=f, delta=delta, pi=4.0)
        start = len(scenarios)
        for seed in seeds:
            scenarios.append(
                mobile_byzantine_scenario(params, duration=16.0, seed=seed))
        groups.append((params, range(start, start + len(seeds))))
    records = campaign_records(scenarios)
    rows = []
    for (n, f, delta, seeds), (params, indices) in zip(CONFIGS, groups):
        bound = params.bounds().max_deviation
        worst = max(records[i].max_deviation for i in indices)
        rows.append([n, f, delta, len(seeds), worst, bound,
                     ratio(worst, bound), check_mark(worst <= bound)])
    return rows


def test_e1_deviation_vs_bound(benchmark):
    rows = once(benchmark, run_e1)
    emit("e1_deviation", table(
        ["n", "f", "delta", "seeds", "measured_dev", "bound_dev", "ratio", "thm5(i)"],
        rows,
        title="E1: max deviation of good processors vs Theorem 5(i) bound "
              "(rotating f-limited Byzantine adversary)",
        precision=4,
    ))
    for row in rows:
        assert row[-1] == "OK"
