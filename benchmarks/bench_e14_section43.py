"""E14 — Section 4.3 proof sketch: Properties 1-3, measured per interval.

The paper's proof overview argues Lemma 7 in three steps over each
analysis interval: (P1) the good biases stay inside their starting
range; (P2) the low/high halves are bounded by ``(Z ± 3D)/4``; (P3) by
the interval's end everything is inside ``(Z ± 7D)/8``.  The proof is
only sketched (for the ``rho = epsilon = 0`` case; "a formal analysis
... will be included in the full version").  This bench regenerates the
argument empirically: starting from a wide spread, every interval of a
real run (drift, jitter, reading errors, staggered syncs) satisfies all
three properties within an ``O(epsilon)`` slack — plus a negative
control showing the checker fails on a non-synchronizing cluster.
"""

from __future__ import annotations

from _util import emit, once

from repro.core.analysis import section43_properties
from repro.metrics.report import check_mark, table
from repro.runner.builders import benign_scenario, default_params
from repro.runner.experiment import run
from repro.runner.scenario import extremal_clocks


def run_e14():
    params = default_params(n=7, f=2, pi=4.0)
    scenario = benign_scenario(params, duration=4.0, seed=44,
                               initial_offset_spread=0.8 * params.way_off)
    result = run(scenario)
    rows = []
    for i in range(6):
        start = i * params.t_interval
        checks = section43_properties(result.samples, result.corruptions,
                                      params, start)
        by_name = {c.name: c for c in checks}
        rows.append([
            i, start,
            check_mark(by_name["P1"].holds),
            check_mark(by_name["P2"].holds),
            check_mark(by_name["P3"].holds),
            by_name["P3"].detail,
        ])

    # Negative control: a drift-only cluster must fail the contraction.
    control_params = default_params(n=7, f=2, rho=5e-3)
    control = run(benign_scenario(control_params, duration=30.0, seed=46,
                                  protocol="drift-only",
                                  clock_factory=extremal_clocks))
    control_checks = section43_properties(control.samples, control.corruptions,
                                          control_params, 20.0,
                                          slack_epsilons=1.0)
    by_name = {c.name: c for c in control_checks}
    # P1 legitimately holds even for drift-only (the drift allowance
    # covers free-running clocks over one interval); the *contraction*
    # property P3 is what synchronization buys, so that is the one the
    # control must trip.
    rows.append(["ctl", "drift-only @20s",
                 check_mark(by_name["P1"].holds), "-",
                 "VIOLATED" if not by_name["P3"].holds else "OK",
                 "negative control: non-synchronizing cluster"])
    return rows, params


def test_e14_section43_properties(benchmark):
    rows, params = once(benchmark, run_e14)
    emit("e14_section43", table(
        ["interval", "t_start", "P1_containment", "P2_half_bounds",
         "P3_contraction", "detail"],
        rows,
        title=(f"E14: the Section 4.3 proof steps on a live run "
               f"(wide start {0.8 * params.way_off:.3g}, T = "
               f"{params.t_interval:.3g}, slack 4*epsilon)"),
        precision=4,
    ))
    for row in rows[:-1]:
        assert row[2] == "OK" and row[3] == "OK" and row[4] == "OK"
    assert rows[-1][4] == "VIOLATED", "negative control must trip the checker"
