"""Soak — long-horizon stability under randomized f-limited corruption.

Not a paper table: a stability check over many adversary periods.  One
long run (~60 PI-windows) with a randomized corruption plan (random
victim groups, dwells, gaps — f-limited by construction) and the full
strategy mix.  Expected shape: the deviation's 50th/95th/100th
percentiles are flat across the run's thirds (no slow degradation), the
Theorem 5 bound holds globally, and every one of the dozens of released
victims recovers.
"""

from __future__ import annotations

import dataclasses
import random

from _util import emit, once

from repro.adversary.mobile import random_plan
from repro.metrics.report import check_mark, table
from repro.runner.builders import (
    benign_scenario,
    default_params,
    standard_strategy_mix,
    warmup_for,
)
from repro.runner.experiment import run


def run_soak():
    params = default_params(n=7, f=2, pi=2.0)
    duration = 120.0  # 60 adversary periods

    def plan(scenario, clocks):
        return random_plan(n=params.n, f=params.f, pi=params.pi,
                           duration=scenario.duration,
                           strategy_factory=standard_strategy_mix(params, 99),
                           rng=random.Random(0x50AC))

    scenario = benign_scenario(params, duration=duration, seed=99)
    scenario = dataclasses.replace(scenario, plan_builder=plan, name="soak")
    result = run(scenario)

    bound = params.bounds().max_deviation
    warmup = warmup_for(params)
    thirds = []
    for i in range(3):
        lo = warmup + i * (duration - warmup) / 3
        series = [dev for tau, dev in result.deviation_series(warmup)
                  if lo <= tau < lo + (duration - warmup) / 3]
        ordered = sorted(series)
        thirds.append([
            f"third {i + 1}",
            ordered[len(ordered) // 2],
            ordered[int(len(ordered) * 0.95)],
            ordered[-1],
            check_mark(ordered[-1] <= bound),
        ])
    recovery = result.recovery()
    summary = [
        "whole run",
        result.deviation_percentiles(warmup)[50.0],
        result.deviation_percentiles(warmup)[95.0],
        result.max_deviation(warmup),
        check_mark(result.max_deviation(warmup) <= bound),
    ]
    return thirds + [summary], result, bound


def test_soak_long_horizon(benchmark):
    rows, result, bound = once(benchmark, run_soak)
    recovery = result.recovery()
    emit("soak", table(
        ["window", "p50_dev", "p95_dev", "max_dev", "thm5(i)"],
        rows,
        title=(f"Soak: 120 s (~60 PI-windows), randomized f-limited plan, "
               f"{len(result.corruptions)} corruption episodes, bound "
               f"{bound:.4g}"),
        precision=4,
    ) + f"\n\nreleases: {len(recovery.events)}, all recovered: "
        f"{recovery.all_recovered}, worst recovery "
        f"{recovery.max_recovery_time:.3f}s")
    for row in rows:
        assert row[4] == "OK"
    assert recovery.events and recovery.all_recovered
    # No slow degradation: the last third's p95 is within 3x the first's.
    assert rows[2][2] <= 3 * rows[0][2] + 1e-6
