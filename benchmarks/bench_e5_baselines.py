"""E5 — Section 1.1 comparisons: Sync vs baseline protocols.

Regenerates the comparison the paper makes in prose:

* vs **Fetzer-Cristian [9]-style minimal correction** — identical
  steady-state quality, but recovery is slow or never completes ("with
  [9] such recovery may never complete");
* vs **round-based** convergence protocols — works, but round state is
  lost on break-in, delaying recovery;
* vs **unprotected averaging** (the "authenticated NTP" of Section 1)
  — destroyed by a single Byzantine liar;
* vs **drift-only** — calibrates the no-protocol baseline.

Three workloads: benign drift, a rotating Byzantine liar, and a
recovery burst.  Expected shape: only Sync is simultaneously bounded
under attack AND quickly recovering.
"""

from __future__ import annotations

import dataclasses
import math

from _util import emit, once

from repro.adversary.mobile import rotating_plan
from repro.adversary.strategies import LiarStrategy
from repro.metrics.report import format_value, table
from repro.runner.builders import (
    benign_scenario,
    default_params,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run

PROTOCOLS = ["sync", "minimal-correction", "round-based", "averaging", "drift-only"]


def liar_scenario(params, protocol, seed=5):
    def plan(scenario, clocks):
        return rotating_plan(n=params.n, f=params.f, pi=params.pi,
                             duration=scenario.duration,
                             strategy_factory=lambda n, e: LiarStrategy(
                                 offset=1e3 * params.way_off),
                             first_start=2.0 * params.t_interval)

    scenario = benign_scenario(params, duration=12.0, seed=seed, protocol=protocol)
    return dataclasses.replace(scenario, plan_builder=plan)


def run_e5():
    params = default_params(n=7, f=2, pi=4.0)
    bound = params.bounds().max_deviation
    warmup = warmup_for(params)
    rows = []
    for protocol in PROTOCOLS:
        benign = run(benign_scenario(params, duration=12.0, seed=5,
                                     protocol=protocol))
        attacked = run(liar_scenario(params, protocol))
        recovering = run(recovery_scenario(params, duration=12.0, seed=5,
                                           protocol=protocol))
        recovery = recovering.recovery(tolerance=bound)
        rec_time = recovery.max_recovery_time if recovery.events else math.nan
        rows.append([
            protocol,
            benign.max_deviation(warmup),
            attacked.max_deviation(warmup),
            "OK" if attacked.max_deviation(warmup) <= bound else "BROKEN",
            rec_time,
            "OK" if (recovery.events and recovery.all_recovered
                     and rec_time < params.pi) else "FAILED",
        ])
    rows.append(["(bound)", bound, bound, "-", params.pi, "-"])
    return rows


def test_e5_baseline_comparison(benchmark):
    rows = once(benchmark, run_e5)
    emit("e5_baselines", table(
        ["protocol", "dev_benign", "dev_liar_attack", "attack", "recovery_time",
         "recovery"],
        rows,
        title="E5: Sync vs baselines (benign deviation / deviation under a "
              "rotating Byzantine liar / recovery from a WayOff-scale burst)",
        precision=4,
    ))
    by_name = {row[0]: row for row in rows}
    # The paper's protocol: survives the attack AND recovers fast.
    assert by_name["sync"][3] == "OK" and by_name["sync"][5] == "OK"
    # Minimal correction: fine under attack, but recovery fails/stalls.
    assert by_name["minimal-correction"][3] == "OK"
    assert by_name["minimal-correction"][5] == "FAILED"
    # Unprotected averaging: broken by the liar.
    assert by_name["averaging"][3] == "BROKEN"
    # Round-based midpoint: attack-resistant (it trims), recovery works
    # through the WayOff-less midpoint more slowly or equally.
    assert by_name["round-based"][3] == "OK"
