"""E2 — Theorem 5(ii): accuracy (logical drift + discontinuity).

Regenerates the accuracy table: measured logical drift ``rho~`` and
discontinuity ``alpha`` of good processors against the Theorem 5(ii)
bounds ``rho + C/(2T)`` and ``epsilon + C/2``, across benign and
Byzantine workloads and both clock populations.  Expected shape: both
measured quantities below their bounds everywhere; drift approaches the
hardware ``rho`` (the Section 4.1 remark) since C is tiny at K = 10+.
"""

from __future__ import annotations

from _util import emit, once

from repro.metrics.report import check_mark, table
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    warmup_for,
)
from repro.runner.experiment import run
from repro.runner.scenario import extremal_clocks, wander_clocks


def run_e2():
    params = default_params(n=7, f=2, pi=4.0)
    cases = [
        ("benign/wander", benign_scenario(params, duration=16.0, seed=1)),
        ("benign/extremal", benign_scenario(params, duration=16.0, seed=1,
                                            clock_factory=extremal_clocks)),
        ("byzantine/wander", mobile_byzantine_scenario(params, duration=16.0, seed=2)),
        ("byzantine/extremal", mobile_byzantine_scenario(
            params, duration=16.0, seed=2, clock_factory=extremal_clocks)),
    ]
    bounds = params.bounds()
    rows = []
    for label, scenario in cases:
        result = run(scenario)
        accuracy = result.accuracy()
        rows.append([
            label,
            accuracy.implied_drift, bounds.logical_drift,
            check_mark(accuracy.implied_drift <= bounds.logical_drift),
            accuracy.max_discontinuity, bounds.discontinuity,
            check_mark(accuracy.max_discontinuity <= bounds.discontinuity),
        ])
    rows.append(["(hardware rho)", params.rho, "-", "-", "-", "-", "-"])
    return rows


def test_e2_accuracy_vs_bounds(benchmark):
    rows = once(benchmark, run_e2)
    emit("e2_accuracy", table(
        ["workload", "drift_meas", "drift_bound", "5(ii)a",
         "disc_meas", "disc_bound", "5(ii)b"],
        rows,
        title="E2: logical drift and discontinuity vs Theorem 5(ii) bounds",
        precision=4,
    ))
    for row in rows[:-1]:
        assert row[3] == "OK" and row[6] == "OK"
