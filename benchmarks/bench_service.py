"""Time-service load benchmark: QPS and latency under the SLO.

Deploys a live Sync cluster on a real asyncio loop (loopback transport
for protocol traffic), fronts node 0 with a
:class:`~repro.service.query.TimeQueryServer` on a real UDP socket, and
drives it with a windowed load generator: ``window`` queries in flight
at all times until ``queries`` have completed, measuring sustained
queries/sec and per-query latency percentiles over genuine datagrams on
localhost.

The SLO this system commits to (EXPERIMENTS.md, service-load section):

* **>= 10,000 queries/sec** sustained through one node's endpoint, and
* **p99 latency < delta** — an answer must be cheaper than the network
  round-trip bound the protocol itself assumes, which is what makes
  queries *estimation-cost* reads rather than Sync-priced work.

Absolute QPS is machine-dependent, so the gate
(``tools/bench_gate.py``) compares ``normalized_qps`` — QPS divided by
the same frozen legacy-analysis yardstick PR 4's figures use, measured
in this very process — against the committed baseline, exactly like the
analysis speedups.  The absolute SLO floors are still checked: they are
the acceptance bar the service must clear on any credible host.

A ``direct_qps`` figure (dispatch without sockets) is recorded for the
trajectory: the gap between it and ``qps`` is pure transport cost.
"""

from __future__ import annotations

import asyncio
import gc
from collections import deque
from statistics import median
from time import perf_counter

from _util import emit, once

from bench_measures import build_workload, legacy_deviation_series

from repro.metrics.report import table
from repro.rt.live import build_cluster, default_live_params
from repro.service.query import OP_NOW, TimeQuery, TimeQueryClient, answer_query

#: Load shape: enough queries for stable percentiles, a window deep
#: enough to keep the server saturated without queueing delay dominating
#: the latency percentiles (the client and server share one loop, so a
#: deep window just measures its own backlog).
WORKLOAD = {
    "queries": 20_000,
    "window": 32,
    "warmup": 300,
    "nodes": 4,
    "f": 1,
    "delta": 0.02,
    "seed": 0,
    "passes": 3,
}

#: The committed SLO (also enforced by tools/bench_gate.py).
QPS_FLOOR = 10_000.0
P99_LATENCY_BOUND = WORKLOAD["delta"]


def _legacy_yardstick() -> float:
    """Legacy analysis samples/sec — PR 4's machine-speed reference.

    Times the same frozen row-oriented pipeline ``bench_measures``
    gates against, on the same workload prefix, best of 3.
    """
    spec, times, rows, _clocks, corruptions = build_workload()
    prefix = spec["legacy_samples"]
    legacy_times = times[:prefix]
    legacy_rows = {node: column[:prefix] for node, column in rows.items()}
    best = 0.0
    for _ in range(3):
        gc.collect()
        start = perf_counter()
        legacy_deviation_series(legacy_times, legacy_rows, corruptions,
                                spec["pi"], spec["n"])
        best = max(best, prefix / (perf_counter() - start))
    return best


async def _drive_load(spec: dict) -> dict:
    """Run the cluster + server + windowed client; return raw figures."""
    loop = asyncio.get_running_loop()
    params = default_live_params(n=spec["nodes"], f=spec["f"],
                                 delta=spec["delta"])
    cluster = build_cluster(params, loop, seed=spec["seed"],
                            transport="loopback")
    client = TimeQueryClient(timeout=5.0)
    try:
        cluster.start(sample_interval=0.5)
        server = await cluster.serve_queries(0)
        client.port = server.address[1]
        await client.connect()

        for _ in range(spec["warmup"]):
            await client.request(OP_NOW)

        # Sliding window: keep `window` queries outstanding, retire them
        # in FIFO order (the server answers in order on loopback, so the
        # oldest future resolves first and each await is O(1) — an
        # asyncio.wait fan-in would re-register `window` callbacks per
        # wake and throttle the generator itself).
        # A GC pass mid-load shows up directly in p99, so collect once
        # up front and pause collection for the measured window — the
        # load allocates only short-lived futures and datagrams.
        total, window = spec["queries"], spec["window"]
        latencies: list[float] = []
        errors = 0
        pending: deque[tuple[asyncio.Future, float]] = deque()
        gc.collect()
        gc.disable()
        try:
            started = perf_counter()
            for _ in range(total):
                if len(pending) >= window:
                    future, sent_at = pending.popleft()
                    reply, _stamp = await future
                    latencies.append(perf_counter() - sent_at)
                    if not reply.ok:
                        errors += 1
                pending.append((client.submit(OP_NOW), perf_counter()))
            while pending:
                future, sent_at = pending.popleft()
                reply, _stamp = await future
                latencies.append(perf_counter() - sent_at)
                if not reply.ok:
                    errors += 1
            elapsed = perf_counter() - started
        finally:
            gc.enable()

        # Transport-free dispatch: the same answers without sockets.
        service = cluster.time_service(0)
        probe = TimeQuery(op=OP_NOW, qid=0)
        direct_n = 50_000
        start = perf_counter()
        for _ in range(direct_n):
            answer_query(service, probe)
        direct_qps = direct_n / (perf_counter() - start)
    finally:
        client.close()
        cluster.stop()

    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    return {
        "qps": total / elapsed,
        "p50_latency_s": median(ordered),
        "p99_latency_s": p99,
        "errors": errors,
        "unmatched_replies": client.replies_unmatched,
        "direct_qps": direct_qps,
    }


def measure_service(legacy_sps: float | None = None,
                    spec: dict | None = None) -> dict:
    """Run the load benchmark; returns the ``service`` metrics block.

    Args:
        legacy_sps: The legacy-analysis yardstick (samples/sec) when the
            caller already measured it (``bench_gate`` reuses the one
            from ``bench_measures``); measured here otherwise.
        spec: Workload overrides, for tests.
    """
    spec = dict(WORKLOAD, **(spec or {}))
    if legacy_sps is None:
        legacy_sps = _legacy_yardstick()
    # Best of ``passes`` full load runs: one scheduler hiccup on a busy
    # host should not fail the SLO floor (same policy as the best-of-N
    # timing in bench_measures).
    figures = asyncio.run(_drive_load(spec))
    for _ in range(spec["passes"] - 1):
        again = asyncio.run(_drive_load(spec))
        if again["qps"] > figures["qps"]:
            figures = again
    delta = spec["delta"]
    return {
        "workload": spec,
        **figures,
        "p99_vs_delta": figures["p99_latency_s"] / delta,
        "legacy_samples_per_sec": legacy_sps,
        "normalized_qps": figures["qps"] / legacy_sps,
    }


def metrics_table(metrics: dict) -> str:
    spec = metrics["workload"]
    rows = [
        ("sustained QPS (UDP loopback)", f"{metrics['qps']:,.0f}",
         f">= {QPS_FLOOR:,.0f}"),
        ("p50 latency", f"{metrics['p50_latency_s'] * 1e3:.3f} ms", "-"),
        ("p99 latency", f"{metrics['p99_latency_s'] * 1e3:.3f} ms",
         f"< {spec['delta'] * 1e3:.0f} ms (delta)"),
        ("direct dispatch (no sockets)", f"{metrics['direct_qps']:,.0f}", "-"),
        ("normalized QPS (vs legacy yardstick)",
         f"{metrics['normalized_qps']:.3f}", "gated"),
        ("failed queries", str(metrics["errors"]), "0"),
    ]
    return table(
        ["figure", "measured", "SLO"], rows,
        title=(f"Time-service load, {spec['queries']:,} queries, "
               f"window {spec['window']}, n={spec['nodes']} live cluster"))


def test_service_load_slo(benchmark):
    """One node sustains >= 10k queries/sec with p99 under delta."""
    metrics = once(benchmark, measure_service)
    emit("bench_service", metrics_table(metrics))
    assert metrics["errors"] == 0
    assert metrics["qps"] >= QPS_FLOOR
    assert metrics["p99_latency_s"] < P99_LATENCY_BOUND
