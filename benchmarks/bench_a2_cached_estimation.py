"""A2 — the Section 3.1 caching caveat, measured.

The paper: probes can be spread over time in a separate thread to cut
network load, BUT "we cannot guarantee the conditions of Definition 4
anymore, since the separate thread may return an old cached value ...
the analysis in this paper cannot be applied 'right out of the box'".

We sweep the probe rate (cache refresh period) and compare the fresh
(paper) protocol against naive and compensated cached variants on the
recovery workload.  Expected shape: at fast refresh all three behave
alike; as the cache grows stale the *naive* variant's recovery slows
and its deviation (measured over the good set) breaks past the Theorem
5 bound — the cached ``d`` values are wrong by exactly the node's own
recent corrections — while the compensated variant (subtract own-adj
delta, inflate ``a`` by ``2*rho*staleness``) stays within the bound at
a modest message saving.
"""

from __future__ import annotations

import math

from _util import emit, once

from repro.metrics.report import check_mark, table
from repro.protocols.cached_estimation import CachedEstimationProcess
from repro.runner.builders import default_params, recovery_scenario, warmup_for
from repro.runner.experiment import run


def cached_factory(probe_interval_fraction, compensate):
    def factory(runtime, params, start_phase):
        return CachedEstimationProcess(
            runtime, params, start_phase=start_phase,
            probe_interval=params.sync_interval * probe_interval_fraction,
            max_staleness=8.0 * params.sync_interval,
            compensate=compensate,
        )
    return factory


def run_a2():
    params = default_params(n=7, f=2, pi=4.0)
    bound = params.bounds().max_deviation
    rows = []

    def record(label, protocol):
        result = run(recovery_scenario(params, duration=14.0, seed=13,
                                       protocol=protocol,
                                       displacement=8.0 * params.way_off))
        report = result.recovery(tolerance=bound)
        deviation = result.max_deviation(warmup_for(params))
        rec_time = report.max_recovery_time if report.events else math.nan
        rows.append([label, deviation, check_mark(deviation <= bound),
                     rec_time, result.messages_delivered])

    record("fresh estimation (paper)", "sync")
    for fraction in (1.0 / params.n, 0.5):
        record(f"cached naive, probe every {fraction:g}*SyncInt",
               cached_factory(fraction, compensate=False))
        record(f"cached compensated, probe every {fraction:g}*SyncInt",
               cached_factory(fraction, compensate=True))
    return rows, params


def test_a2_cached_estimation_caveat(benchmark):
    rows, params = once(benchmark, run_a2)
    emit("a2_cached_estimation", table(
        ["variant", "good_set_dev", "thm5(i)", "recovery_time", "messages"],
        rows,
        title="A2: separate-thread (cached) estimation vs Definition 4 — "
              "the Section 3.1 caveat quantified",
        precision=4,
    ))
    by_name = {row[0]: row for row in rows}
    fresh = by_name["fresh estimation (paper)"]
    slow_naive = by_name["cached naive, probe every 0.5*SyncInt"]
    slow_comp = by_name["cached compensated, probe every 0.5*SyncInt"]
    assert fresh[2] == "OK"
    # The caveat: with stale caches the naive variant misbehaves...
    assert slow_naive[3] > 2 * fresh[3] or slow_naive[2] == "VIOLATED"
    # ...while compensation restores the guarantee.
    assert slow_comp[2] == "OK"
    assert slow_comp[3] < params.pi
