"""E6 — Section 5 counterexample: two (3f+1)-cliques joined by a matching.

Regenerates the counterexample claim: the graph is (3f+1)-connected,
yet Sync "cannot guarantee that the clocks in one clique do not drift
apart from those in the other."  We run identical clock populations on
the two-clique graph and on a full mesh; rows sample the intra-clique
deviation and the inter-clique gap over time.  Expected shape:
intra-clique deviation flat and tiny in both topologies; inter-clique
gap growing linearly at the mutual drift rate on the two-clique graph,
flat on the mesh.
"""

from __future__ import annotations

import statistics

from _util import emit, once

from repro.metrics.report import table
from repro.runner.builders import two_clique_scenario
from repro.runner.experiment import run


CHECKPOINTS = [5.0, 10.0, 20.0, 30.0, 40.0]


def measure(result):
    params = result.params
    half = params.n // 2
    rows = []
    for t in CHECKPOINTS:
        index = result.samples.index_at_or_before(t)
        c1 = [result.samples.clocks[i][index] for i in range(half)]
        c2 = [result.samples.clocks[i][index] for i in range(half, params.n)]
        rows.append((
            t,
            max(c1) - min(c1),
            max(c2) - min(c2),
            abs(statistics.mean(c1) - statistics.mean(c2)),
        ))
    return rows


def run_e6():
    cliques = run(two_clique_scenario(f=1, duration=40.0, seed=6))
    mesh_scenario = two_clique_scenario(f=1, duration=40.0, seed=6)
    mesh_scenario.topology = None  # full mesh on the same 8 nodes
    mesh = run(mesh_scenario)
    return measure(cliques), measure(mesh), cliques.params


def test_e6_two_clique_counterexample(benchmark):
    clique_rows, mesh_rows, params = once(benchmark, run_e6)
    bound = params.bounds().max_deviation
    rows = []
    for (t, w1, w2, gap_c), (_, _, _, gap_m) in zip(clique_rows, mesh_rows):
        rows.append([t, w1, w2, gap_c, gap_m])
    emit("e6_two_clique", table(
        ["time", "intra_clique_1", "intra_clique_2", "gap_two_clique",
         "gap_full_mesh"],
        rows,
        title=(f"E6: two-clique counterexample, n={params.n}, f=1 "
               f"(Theorem 5(i) bound {bound:.3g}); cliques stay internally "
               f"tight while drifting apart; the mesh does not"),
        precision=4,
    ))
    # Intra-clique synchronization is fine throughout.
    assert all(row[1] <= bound and row[2] <= bound for row in rows)
    # The inter-clique gap grows monotonically and exceeds the bound.
    gaps = [row[3] for row in rows]
    assert all(b > a for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] > bound
    # The mesh control stays bounded.
    assert all(row[4] <= bound for row in rows)
