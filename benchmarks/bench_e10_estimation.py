"""E10 — Section 3.1 optimization: min-of-k round-trip estimation.

"A common method ... to decrease the error in estimating the peer's
clock (at the expense of worse timeliness) is to repeatedly ping the
other processor and choose the estimation given from the ping with the
least round trip time" (as in NTP).  On a jittery link, we sweep the
number of pings per peer and measure the mean self-reported error
bound ``a`` and the achieved cluster deviation.  Expected shape: the
mean error bound falls monotonically with k (toward the 2x base-delay
floor) and the deviation improves correspondingly, while message cost
rises linearly.
"""

from __future__ import annotations

import statistics

from _util import emit, once

from repro.core.sync import SyncProcess
from repro.net.links import JitteredDelay
from repro.runner.builders import benign_scenario, default_params, warmup_for
from repro.runner.experiment import run
from repro.metrics.report import table


PINGS = [1, 2, 4, 8]


def make_factory(pings_per_peer, accuracies):
    def factory(runtime, params, start_phase):
        process = SyncProcess(runtime, params,
                              start_phase=start_phase,
                              pings_per_peer=pings_per_peer)

        original = process._complete_sync

        def wrapped():
            session = process._session
            if session is not None:
                for estimate in session._best.values():
                    accuracies.append(estimate.accuracy)
            original()

        process._complete_sync = wrapped
        return process

    return factory


def run_e10():
    params = default_params(n=7, f=2, pi=4.0)
    delay = JitteredDelay(params.delta, base=0.05 * params.delta,
                          jitter_mean=0.4 * params.delta)
    rows = []
    for pings in PINGS:
        accuracies: list[float] = []
        scenario = benign_scenario(params, duration=10.0, seed=10,
                                   protocol=make_factory(pings, accuracies),
                                   delay_model=delay)
        result = run(scenario)
        rows.append([
            pings,
            statistics.mean(accuracies),
            statistics.median(accuracies),
            result.max_deviation(warmup_for(params)),
            result.messages_delivered,
        ])
    return rows, params


def test_e10_min_of_k_estimation(benchmark):
    rows, params = once(benchmark, run_e10)
    emit("e10_estimation", table(
        ["pings_per_peer", "mean_error_bound", "median_error_bound",
         "measured_dev", "messages"],
        rows,
        title="E10: min-of-k round-trip estimation on a jittery link "
              f"(delta={params.delta:g}, heavy one-sided jitter)",
        precision=4,
    ))
    mean_errors = [row[1] for row in rows]
    assert all(b < a for a, b in zip(mean_errors, mean_errors[1:])), \
        "more pings must tighten the mean error bound"
    assert rows[-1][3] <= rows[0][3] * 1.1, "deviation should not degrade"
    messages = [row[4] for row in rows]
    assert messages[-1] > 4 * messages[0] * 0.8, "message cost ~ linear in k"
