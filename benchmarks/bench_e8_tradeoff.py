"""E8 — the Section 4.1 tradeoff: sync rate K vs achieved bounds.

The theorem's constants depend on K = floor(PI / T): the residue
``C = (17e + 18pT) / (2^K - 3)`` vanishes geometrically in K, so "if we
choose T to be small compared to PI (for instance T = PI/20) then C is
very small and we get almost perfect accuracy (rho~ ~ rho) and the
significant term in the maximum deviation bound is 16*epsilon."

We sweep target K with PI fixed and report the theoretical bounds plus
the measured deviation under the Byzantine workload.  Expected shape:
the deviation bound collapses toward ``16e + 18pT`` and the drift bound
toward ``rho`` as K grows; measured deviation stays below the bound at
every K; message cost grows linearly in K.
"""

from __future__ import annotations

from _util import emit, once

from repro.metrics.report import check_mark, table
from repro.runner.builders import default_params, mobile_byzantine_scenario, warmup_for
from repro.runner.experiment import run


TARGET_KS = [5, 6, 8, 10, 15, 20]


def run_e8():
    rows = []
    pi = 4.0
    for target_k in TARGET_KS:
        params = default_params(n=7, f=2, pi=pi, target_k=target_k)
        bounds = params.bounds()
        result = run(mobile_byzantine_scenario(params, duration=14.0, seed=8))
        measured = result.max_deviation(warmup_for(params))
        floor = 16 * params.epsilon + 18 * params.rho * bounds.t_interval
        rows.append([
            bounds.k, bounds.t_interval, bounds.c,
            bounds.max_deviation, floor,
            bounds.logical_drift / params.rho,
            measured, check_mark(measured <= bounds.max_deviation),
            result.messages_delivered,
        ])
    return rows


def test_e8_k_tradeoff(benchmark):
    rows = once(benchmark, run_e8)
    emit("e8_tradeoff", table(
        ["K", "T", "C", "dev_bound", "dev_floor_16e+18pT", "drift_bound/rho",
         "measured_dev", "thm5(i)", "messages"],
        rows,
        title="E8: K = PI/T tradeoff — bounds tighten geometrically in K, "
              "message cost grows linearly",
        precision=4,
    ))
    ks = [row[0] for row in rows]
    assert ks == sorted(ks)
    cs = [row[2] for row in rows]
    assert all(b < a for a, b in zip(cs, cs[1:])), "C must shrink with K"
    drift_ratio = [row[5] for row in rows]
    assert drift_ratio[-1] < 1.001, "drift bound approaches hardware rho"
    assert all(row[7] == "OK" for row in rows)
    messages = [row[8] for row in rows]
    assert messages[-1] > messages[0], "higher K costs more messages"
