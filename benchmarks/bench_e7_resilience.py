"""E7 — Definition 2 boundary: what happens past the model's limits.

Regenerates the resilience table: the guarantee holds for an f-limited
adversary on n >= 3f+1 processors, and is void just beyond — (f+1)
simultaneous colluding liars break an n = 3f+1 network, while the same
attack with only f liars does not.  Also shows that the plan auditor
refuses plans that hop faster than PI allows.  Expected shape: OK
exactly inside the model boundary, BROKEN/ REJECTED outside.
"""

from __future__ import annotations

import dataclasses

from _util import emit, once

from repro.adversary.mobile import MobileAdversary, single_burst_plan
from repro.adversary.strategies import TwoFacedStrategy
from repro.errors import AdversaryError
from repro.metrics.report import table
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    warmup_for,
)
from repro.runner.experiment import run


def colluding_burst_scenario(params, liars, seed):
    """`liars` colluding two-faced nodes split the rest of the network:
    each good node with id below the median is told "low", the others
    "high"."""
    threshold = params.n - 1

    def plan(scenario, clocks):
        return single_burst_plan(
            list(range(liars)), start=1.0, dwell=scenario.duration - 1.5,
            strategy_factory=lambda n, e: TwoFacedStrategy(
                magnitude=50.0 * params.way_off,
                split=lambda recipient: recipient >= threshold),
        )

    scenario = benign_scenario(params, duration=10.0, seed=seed)
    return dataclasses.replace(scenario, plan_builder=plan, enforce_f_limit=False)


def run_e7():
    rows = []
    # 1. f-limited rotation on n = 3f+1: guaranteed, holds.
    for n, f in ((4, 1), (7, 2)):
        params = default_params(n=n, f=f, pi=4.0)
        bound = params.bounds().max_deviation
        result = run(mobile_byzantine_scenario(params, duration=12.0, seed=7))
        deviation = result.max_deviation(warmup_for(params))
        rows.append([f"n={n}", f"f={f} rotating", "inside model",
                     deviation, bound, "OK" if deviation <= bound else "BROKEN"])

    # 2. f simultaneous colluders: still inside the model, holds.
    params = default_params(n=4, f=1, pi=4.0)
    bound = params.bounds().max_deviation
    result = run(colluding_burst_scenario(params, liars=1, seed=8))
    deviation = result.max_deviation(warmup_for(params))
    rows.append(["n=4", "f=1 colluding burst", "inside model",
                 deviation, bound, "OK" if deviation <= bound else "BROKEN"])

    # 3. f+1 simultaneous colluders: outside the model, breaks.
    result = run(colluding_burst_scenario(params, liars=2, seed=8))
    deviation = result.max_deviation(warmup_for(params))
    rows.append(["n=4", "f+1=2 colluding burst", "OUTSIDE model",
                 deviation, bound, "OK" if deviation <= bound else "BROKEN"])

    # 4. Hop faster than PI: the auditor rejects the plan outright.
    from repro.adversary.strategies import SilentStrategy
    from repro.adversary.mobile import PlannedCorruption
    fast_hop = [
        PlannedCorruption(node=0, start=0.0, end=1.0, strategy=SilentStrategy()),
        PlannedCorruption(node=1, start=1.5, end=2.5, strategy=SilentStrategy()),
    ]
    try:
        import repro.sim.engine as engine
        from repro.net.links import UniformDelay
        from repro.net.network import Network
        from repro.net.topology import full_mesh
        sim = engine.Simulator(seed=0)
        network = Network(sim, full_mesh(params.n), UniformDelay(params.delta))
        MobileAdversary(sim, network, fast_hop, f=params.f, pi=params.pi)
        rows.append(["n=4", "hop gap < PI", "OUTSIDE model", "-", "-", "NOT-REJECTED"])
    except AdversaryError:
        rows.append(["n=4", "hop gap < PI", "OUTSIDE model", "-", "-", "REJECTED"])
    return rows


def test_e7_resilience_boundary(benchmark):
    rows = once(benchmark, run_e7)
    emit("e7_resilience", table(
        ["network", "adversary", "regime", "measured_dev", "bound", "verdict"],
        rows,
        title="E7: the Definition 2 boundary — guarantees hold exactly inside "
              "the model",
        precision=4,
    ))
    assert rows[0][-1] == "OK" and rows[1][-1] == "OK" and rows[2][-1] == "OK"
    assert rows[3][-1] == "BROKEN"
    assert rows[4][-1] == "REJECTED"
