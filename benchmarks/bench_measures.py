"""PR 4 measurement-engine benchmark: columnar + incremental vs legacy.

Times the analysis phase of an E1-scale workload — n=16 clocks on a
200k-point sample grid under a rotating corruption schedule — through
four pipelines:

* **legacy** — the pre-PR row-oriented path, frozen here verbatim: the
  brute O(corruptions) ``good_set`` predicate re-derived per sample
  over per-node Python lists (timed on a prefix of the grid and
  reported as throughput, so the bench stays fast);
* **python** — the new engine (:class:`GoodSetIndex` runs +
  ``spread_slice``) with the numpy backend forced off;
* **numpy** — the same engine with the numpy fast path (skipped when
  numpy is not installed);
* **streaming** — :class:`OnlineMeasures` fed sample-by-sample (this
  one pays the clock reads too, so it is reported but not gated).

Every pipeline must produce **byte-identical** deviation series; the
assertions here and ``tools/bench_gate.py`` (which imports
:func:`measure` and writes ``BENCH_PR4.json``) both enforce it.
"""

from __future__ import annotations

import bisect
import gc
import math
import random
import struct
from time import perf_counter

from _util import emit, once

from repro.metrics.columns import HAVE_NUMPY, set_numpy
from repro.metrics.measures import deviation_series
from repro.metrics.report import table
from repro.metrics.sampler import ClockSamples, CorruptionInterval, GoodSetIndex, good_set
from repro.metrics.streaming import OnlineMeasures

#: E1-scale workload: n=16, 200k samples (2000 s at 10 ms), a rotating
#: one-node corruption every PI seconds.  The legacy path is timed on a
#: 5k-sample prefix — large enough for stable throughput numbers,
#: small enough that the O(samples x corruptions) scan stays tolerable.
WORKLOAD = {
    "n": 16,
    "samples": 200_000,
    "dt": 0.01,
    "pi": 2.0,
    "legacy_samples": 5_000,
    "seed": 20000806,
}


class _SynthClock:
    """Pure function of real time: linear rate plus a slow wobble."""

    __slots__ = ("offset", "rate", "amp", "freq", "phase", "adjustments")

    def __init__(self, offset, rate, amp, freq, phase):
        self.offset = offset
        self.rate = rate
        self.amp = amp
        self.freq = freq
        self.phase = phase
        self.adjustments = []

    def read(self, tau):
        return self.offset + self.rate * tau + self.amp * math.sin(self.freq * tau + self.phase)


def build_workload(spec=None):
    """Synthesize the E1-scale grid, clock rows, and corruption plan."""
    spec = dict(WORKLOAD, **(spec or {}))
    rng = random.Random(spec["seed"])
    n, count, dt, pi = spec["n"], spec["samples"], spec["dt"], spec["pi"]
    clocks = {
        node: _SynthClock(
            offset=rng.uniform(-0.5, 0.5),
            rate=1.0 + rng.uniform(-5e-4, 5e-4),
            amp=rng.uniform(0.0, 0.01),
            freq=rng.uniform(0.1, 1.0),
            phase=rng.uniform(0.0, 2 * math.pi),
        )
        for node in range(n)
    }
    times = [i * dt for i in range(count)]
    rows = {node: [clock.read(tau) for tau in times]
            for node, clock in clocks.items()}
    horizon = times[-1]
    corruptions = []
    k = 0
    while (start := k * pi + 0.25 * pi) + 0.5 * pi < horizon:
        corruptions.append(CorruptionInterval(k % n, start, start + 0.5 * pi))
        k += 1
    return spec, times, rows, clocks, corruptions


# ---------------------------------------------------------------------------
# The frozen legacy analysis path (pre-PR measures.py, verbatim shape)
# ---------------------------------------------------------------------------


def legacy_deviation_series(times, rows, corruptions, pi, n):
    """Row-oriented deviation series with per-sample good-set derivation."""
    series = []
    for i, tau in enumerate(times):
        good = good_set(corruptions, tau, pi, n)
        if len(good) < 2:
            continue
        values = [rows[node][i] for node in good]
        series.append((tau, max(values) - min(values)))
    return series


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _series_bytes(series):
    flat = [x for pair in series for x in pair]
    return struct.pack(f"<{len(flat)}d", *flat)


#: Timed regions run this many times; the best rep is reported.  The
#: gate compares figures against a committed baseline with a 20%
#: tolerance; best-of-N (interference only ever slows a rep down) plus
#: *interleaving* — every pipeline is timed once per round, so a slow
#: system phase hits the speedup ratio's numerator and denominator
#: alike — is what makes single-process timings stable enough for that.
REPS = 4


def _interleaved(pipelines):
    """Time ``{name: (work, units)}`` in rounds; best units/sec each.

    Returns:
        ``(results, throughput)`` — each pipeline's last result and its
        best observed units/sec.
    """
    results = {}
    throughput = {name: 0.0 for name in pipelines}
    for _ in range(REPS):
        for name, (work, units) in pipelines.items():
            gc.collect()
            t0 = perf_counter()
            results[name] = work()
            throughput[name] = max(throughput[name],
                                   units / (perf_counter() - t0))
    return results, throughput


def measure():
    """Run every pipeline once; return the metrics dict for the gate.

    Raises:
        AssertionError: If any pipeline's deviation series is not
            byte-identical to the others.
    """
    spec, times, rows, clocks, corruptions = build_workload()
    n, pi = spec["n"], spec["pi"]
    legacy_n = spec["legacy_samples"]

    legacy_times, legacy_rows = times[:legacy_n], {
        node: column[:legacy_n] for node, column in rows.items()}
    samples = ClockSamples(times=list(times),
                           clocks={node: list(col) for node, col in rows.items()})

    def analysis(force_numpy):
        set_numpy(force_numpy)
        try:
            return deviation_series(samples, corruptions, pi, n,
                                    index=GoodSetIndex(corruptions, pi, n))
        finally:
            set_numpy(None)

    # End-to-end: a full streamed E1 run, normalized by the legacy
    # analysis throughput measured interleaved on this same machine, so
    # the figure is comparable across hosts.
    from repro.runner.campaign import run_config
    e1_config = {
        "params": {"n": 4, "f": 1, "delta": 0.005, "rho": 5e-4, "pi": 2.0},
        "scenario": "mobile-byzantine",
        "duration": 60.0,
        "seed": 1,
    }

    pipelines = {
        "legacy": (lambda: legacy_deviation_series(
            legacy_times, legacy_rows, corruptions, pi, n), legacy_n),
        "python": (lambda: analysis(False), len(times)),
        "e2e": (lambda: run_config(e1_config, stream_measures=True), 1.0),
    }
    if HAVE_NUMPY:
        pipelines["numpy"] = (lambda: analysis(True), len(times))
    results, throughput = _interleaved(pipelines)

    legacy_series, legacy_sps = results["legacy"], throughput["legacy"]
    python_series, python_sps = results["python"], throughput["python"]
    numpy_sps = throughput.get("numpy")
    if HAVE_NUMPY:
        assert _series_bytes(results["numpy"]) == _series_bytes(python_series), \
            "numpy backend diverged from the python backend"

    # Legacy prefix must be a byte-identical prefix of the new series.
    cut = bisect.bisect_right([tau for tau, _ in python_series],
                              legacy_times[-1])
    assert _series_bytes(python_series[:cut]) == _series_bytes(legacy_series), \
        "new engine diverged from the legacy row-oriented path"

    # Streaming: pays the clock reads too, so reported but not gated.
    stream = OnlineMeasures(clocks, corruptions, pi=pi, n=n,
                            recovery_tolerance=1.0, recovery_settle=pi)
    t0 = perf_counter()
    for i, tau in enumerate(times):
        stream.on_sample(tau, i)
    stream.finalize()
    stream_sps = len(times) / (perf_counter() - t0)
    assert _series_bytes(stream.deviation_series()) == _series_bytes(python_series), \
        "streamed deviation series diverged from the post-hoc series"

    record = results["e2e"]
    events_per_sec = record.events_processed * throughput["e2e"]

    return {
        "workload": {**spec, "corruptions": len(corruptions)},
        "analysis": {
            "legacy_samples_per_sec": legacy_sps,
            "python": {"samples_per_sec": python_sps,
                       "speedup": python_sps / legacy_sps},
            "numpy": ({"samples_per_sec": numpy_sps,
                       "speedup": numpy_sps / legacy_sps}
                      if numpy_sps is not None else None),
            "streaming_samples_per_sec": stream_sps,
        },
        "end_to_end": {
            "events_per_sec": events_per_sec,
            "normalized": events_per_sec / legacy_sps,
        },
        "identical": True,
    }


def metrics_table(metrics):
    analysis = metrics["analysis"]
    rows = [
        ("legacy (rows + brute good_set)",
         f"{analysis['legacy_samples_per_sec']:,.0f}", "1.0x"),
        ("GoodSetIndex + python columns",
         f"{analysis['python']['samples_per_sec']:,.0f}",
         f"{analysis['python']['speedup']:.1f}x"),
    ]
    if analysis["numpy"] is not None:
        rows.append(("GoodSetIndex + numpy columns",
                     f"{analysis['numpy']['samples_per_sec']:,.0f}",
                     f"{analysis['numpy']['speedup']:.1f}x"))
    rows.append(("streaming (incl. clock reads)",
                 f"{analysis['streaming_samples_per_sec']:,.0f}", "-"))
    rows.append(("end-to-end streamed E1 (events/s)",
                 f"{metrics['end_to_end']['events_per_sec']:,.0f}", "-"))
    return table(
        ["pipeline", "samples/s", "speedup"], rows,
        title=(f"Analysis throughput, E1-scale workload "
               f"(n={metrics['workload']['n']}, "
               f"{metrics['workload']['samples']:,} samples, "
               f"{metrics['workload']['corruptions']} corruptions)"))


def test_measurement_engine_speedup(benchmark):
    """The new analysis engine is >=5x the legacy path, byte-identically."""
    metrics = once(benchmark, measure)
    emit("bench_measures", metrics_table(metrics))
    assert metrics["identical"]
    assert metrics["analysis"]["python"]["speedup"] >= 5.0
