"""Statistics — headline measures with confidence intervals over seeds.

The experiment tables elsewhere report single-seed (deterministic)
numbers; this bench establishes that they are not seed-lottery
artifacts: the three headline measures of the standard n=7, f=2
Byzantine workload are replicated over seeds and reported as
mean ± 95% CI.  Expected shape: tight intervals, all comfortably on the
correct side of their bounds.
"""

from __future__ import annotations

from _util import emit, once

from repro.metrics.report import check_mark, table
from repro.runner.builders import (
    default_params,
    mobile_byzantine_scenario,
    recovery_scenario,
    warmup_for,
)
from repro.runner.stats import replicate_measure

SEEDS = [1, 2, 3, 4, 5]


def run_stats():
    params = default_params(n=7, f=2, pi=4.0)
    bounds = params.bounds()
    warmup = warmup_for(params)

    deviation = replicate_measure(
        lambda seed: mobile_byzantine_scenario(params, duration=14.0, seed=seed),
        lambda result: result.max_deviation(warmup),
        seeds=SEEDS)
    drift = replicate_measure(
        lambda seed: mobile_byzantine_scenario(params, duration=14.0, seed=seed),
        lambda result: result.accuracy().implied_drift,
        seeds=SEEDS)
    recovery = replicate_measure(
        lambda seed: recovery_scenario(params, duration=10.0, seed=seed),
        lambda result: result.recovery().max_recovery_time,
        seeds=SEEDS)

    rows = [
        ["max deviation", deviation.mean, deviation.half_width,
         deviation.ci_high, bounds.max_deviation,
         check_mark(deviation.ci_high <= bounds.max_deviation)],
        ["implied drift", drift.mean, drift.half_width, drift.ci_high,
         bounds.logical_drift,
         check_mark(drift.ci_high <= bounds.logical_drift)],
        ["recovery time", recovery.mean, recovery.half_width,
         recovery.ci_high, params.pi,
         check_mark(recovery.ci_high <= params.pi)],
    ]
    return rows


def test_headline_measures_with_cis(benchmark):
    rows = once(benchmark, run_stats)
    emit("stats_cis", table(
        ["measure", "mean", "±95% CI", "CI upper", "bound", "upper < bound"],
        rows,
        title=f"Headline measures, mean ± 95% CI over seeds {SEEDS} "
              "(n=7, f=2, rotating Byzantine workload)",
        precision=4,
    ))
    for row in rows:
        assert row[-1] == "OK", row
        # Tight replication: the CI half-width is well under the mean's
        # distance to the bound.
        assert row[2] < row[4] - row[1], row
