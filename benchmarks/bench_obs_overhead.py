"""Observability overhead: flight recorder cost on the E1 workload.

Runs the standard rotating mobile-Byzantine scenario three ways —
recorder off (the default), metrics-only, and full tracing (spans +
metrics + probes) — and reports wall time and simulator throughput for
each.  With the recorder off every publisher reduces to a single
``if self.obs is not None`` attribute check, so that mode should sit
within noise of the seed's throughput; the table makes the cost of the
richer modes visible so it never creeps up silently.

Observability is write-only by contract, so all three modes must
process the *identical* event schedule — asserted below, not just
eyeballed.
"""

from __future__ import annotations

import time

from _util import emit, once

from repro.metrics.report import table
from repro.obs import FlightRecorder, ObsConfig
from repro.runner.builders import default_params, mobile_byzantine_scenario
from repro.runner.experiment import run


DURATION = 12.0
SEED = 1

MODES = [
    ("off", lambda: None),
    ("metrics-only", lambda: FlightRecorder(ObsConfig(spans=False,
                                                      probes=False))),
    ("full", lambda: FlightRecorder()),
]


def run_mode(recorder):
    scenario = mobile_byzantine_scenario(default_params(n=7, f=2),
                                         duration=DURATION, seed=SEED)
    start = time.perf_counter()
    result = run(scenario, recorder=recorder)
    elapsed = time.perf_counter() - start
    published = 0 if recorder is None else recorder.bus.events_published
    return result, elapsed, published


def run_overhead():
    rows = []
    baseline = None
    schedule = None
    for name, factory in MODES:
        result, elapsed, published = run_mode(factory())
        if baseline is None:
            baseline = elapsed
        if schedule is None:
            schedule = result.events_processed
        # Write-only contract: every mode runs the same schedule.
        assert result.events_processed == schedule, name
        rows.append([name, result.events_processed, published,
                     result.events_processed / elapsed, elapsed,
                     elapsed / baseline])
    return rows


def test_obs_overhead(benchmark):
    rows = once(benchmark, run_overhead)
    emit("obs_overhead", table(
        ["mode", "sim_events", "obs_events", "events_per_s", "wall_s",
         "vs_off"],
        rows,
        title="Flight recorder overhead on the E1 workload "
              "(n=7, f=2, 12 simulated s; identical schedule asserted)",
        precision=3,
    ))
    # Same schedule in every mode (already asserted per-row inside
    # run_overhead; re-check the collected table for good measure).
    assert len({row[1] for row in rows}) == 1
