"""Observability overhead: flight recorder cost, sim and live path.

Two legs, one contract (telemetry must be close to free when off and
affordable when on):

* **Simulator leg** — runs the standard rotating mobile-Byzantine
  scenario three ways — recorder off (the default), metrics-only, and
  full tracing (spans + metrics + probes) — and reports wall time and
  simulator throughput for each.  With the recorder off every publisher
  reduces to a single ``if self.obs is not None`` attribute check, so
  that mode should sit within noise of the seed's throughput.
  Observability is write-only by contract, so all three modes must
  process the *identical* event schedule — asserted, not eyeballed.
* **Live leg** (:func:`measure_live_overhead`) — deploys a loopback
  cluster on a real asyncio loop, fronts node 0 with a
  :class:`~repro.service.query.TimeQueryServer`, and drives it with the
  same windowed load generator ``bench_service`` uses, in three modes:
  telemetry off, counters-only (``ObsConfig(spans=False,
  probes=False)``), and full (spans + metrics + wall-clock Theorem 5
  probe + per-query latency histogram).  The figure that matters is
  ``full_ratio`` — full-telemetry QPS over telemetry-off QPS — which
  ``tools/bench_gate.py`` floors at 0.90: full telemetry may not cost
  more than 10% of query throughput.
"""

from __future__ import annotations

import asyncio
import gc
import time
from collections import deque
from time import perf_counter

from _util import emit, once

from repro.metrics.report import table
from repro.obs import FlightRecorder, ObsConfig
from repro.rt.live import build_cluster, default_live_params
from repro.runner.builders import default_params, mobile_byzantine_scenario
from repro.runner.experiment import run
from repro.service.query import OP_NOW, TimeQueryClient


DURATION = 12.0
SEED = 1

MODES = [
    ("off", lambda: None),
    ("metrics-only", lambda: FlightRecorder(ObsConfig(spans=False,
                                                      probes=False))),
    ("full", lambda: FlightRecorder()),
]


def run_mode(recorder):
    scenario = mobile_byzantine_scenario(default_params(n=7, f=2),
                                         duration=DURATION, seed=SEED)
    start = time.perf_counter()
    result = run(scenario, recorder=recorder)
    elapsed = time.perf_counter() - start
    published = 0 if recorder is None else recorder.bus.events_published
    return result, elapsed, published


def run_overhead():
    rows = []
    baseline = None
    schedule = None
    for name, factory in MODES:
        result, elapsed, published = run_mode(factory())
        if baseline is None:
            baseline = elapsed
        if schedule is None:
            schedule = result.events_processed
        # Write-only contract: every mode runs the same schedule.
        assert result.events_processed == schedule, name
        rows.append([name, result.events_processed, published,
                     result.events_processed / elapsed, elapsed,
                     elapsed / baseline])
    return rows


def test_obs_overhead(benchmark):
    rows = once(benchmark, run_overhead)
    emit("obs_overhead", table(
        ["mode", "sim_events", "obs_events", "events_per_s", "wall_s",
         "vs_off"],
        rows,
        title="Flight recorder overhead on the E1 workload "
              "(n=7, f=2, 12 simulated s; identical schedule asserted)",
        precision=3,
    ))
    # Same schedule in every mode (already asserted per-row inside
    # run_overhead; re-check the collected table for good measure).
    assert len({row[1] for row in rows}) == 1


# -- live-path leg -------------------------------------------------------

#: Smaller than bench_service's workload: three modes x ``passes``
#: full load runs have to fit in the gate's time budget, and a ratio
#: needs matched conditions more than it needs long runs.
LIVE_WORKLOAD = {
    "queries": 6_000,
    "window": 32,
    "warmup": 200,
    "nodes": 4,
    "f": 1,
    "delta": 0.02,
    "seed": 0,
    "passes": 3,
}

#: ``telemetry=`` argument to :func:`build_cluster` per mode.  Factories,
#: not values: each pass gets a fresh ``ObsConfig``.
LIVE_MODES = [
    ("off", lambda: False),
    ("counters-only", lambda: ObsConfig(spans=False, probes=False)),
    ("full", lambda: True),
]


async def _drive_live_queries(spec: dict, telemetry) -> float:
    """One load run against a fresh cluster; returns sustained QPS."""
    loop = asyncio.get_running_loop()
    params = default_live_params(n=spec["nodes"], f=spec["f"],
                                 delta=spec["delta"])
    cluster = build_cluster(params, loop, seed=spec["seed"],
                            transport="loopback", telemetry=telemetry)
    client = TimeQueryClient(timeout=5.0)
    try:
        cluster.start(sample_interval=0.25)
        server = await cluster.serve_queries(0)
        client.port = server.address[1]
        await client.connect()

        for _ in range(spec["warmup"]):
            await client.request(OP_NOW)

        # Same sliding-window generator as bench_service: `window`
        # queries in flight, FIFO retirement, GC paused over the
        # measured stretch so a collection pass cannot skew one mode.
        total, window = spec["queries"], spec["window"]
        errors = 0
        pending: deque[asyncio.Future] = deque()
        gc.collect()
        gc.disable()
        try:
            started = perf_counter()
            for _ in range(total):
                if len(pending) >= window:
                    reply, _stamp = await pending.popleft()
                    if not reply.ok:
                        errors += 1
                pending.append(client.submit(OP_NOW))
            while pending:
                reply, _stamp = await pending.popleft()
                if not reply.ok:
                    errors += 1
            elapsed = perf_counter() - started
        finally:
            gc.enable()
    finally:
        client.close()
        cluster.stop()
    if errors:
        raise AssertionError(f"{errors} failed queries under telemetry "
                             f"mode {telemetry!r}")
    return total / elapsed


def measure_live_overhead(spec: dict | None = None) -> dict:
    """Measure live-path telemetry overhead; returns the metrics block.

    Modes are interleaved within each pass (off, counters, full, off,
    counters, full, ...) so machine-load drift hits every mode alike
    instead of biasing whichever ran last; per mode the best pass is
    kept, the same best-of-N policy the other benchmarks use.
    """
    spec = dict(LIVE_WORKLOAD, **(spec or {}))
    best = {name: 0.0 for name, _ in LIVE_MODES}
    for _ in range(spec["passes"]):
        for name, factory in LIVE_MODES:
            qps = asyncio.run(_drive_live_queries(spec, factory()))
            best[name] = max(best[name], qps)
    return {
        "workload": spec,
        "off_qps": best["off"],
        "counters_qps": best["counters-only"],
        "full_qps": best["full"],
        "counters_ratio": best["counters-only"] / best["off"],
        "full_ratio": best["full"] / best["off"],
    }


def live_table(metrics: dict) -> str:
    spec = metrics["workload"]
    rows = [
        ("off", f"{metrics['off_qps']:,.0f}", "1.000", "-"),
        ("counters-only", f"{metrics['counters_qps']:,.0f}",
         f"{metrics['counters_ratio']:.3f}", "-"),
        ("full", f"{metrics['full_qps']:,.0f}",
         f"{metrics['full_ratio']:.3f}", ">= 0.90 (gated)"),
    ]
    return table(
        ["telemetry mode", "QPS", "vs off", "floor"], rows,
        title=(f"Live telemetry overhead, {spec['queries']:,} queries, "
               f"window {spec['window']}, n={spec['nodes']} loopback "
               f"cluster, best of {spec['passes']} interleaved passes"))


def test_obs_live_overhead(benchmark):
    """Full live telemetry keeps at least half the QPS (loose sanity

    bar; the committed 0.90 floor is enforced by ``tools/bench_gate.py``
    where the run is not sharing the machine with a pytest session).
    """
    metrics = once(benchmark, measure_live_overhead)
    emit("obs_live_overhead", live_table(metrics))
    assert metrics["full_ratio"] >= 0.5
    assert metrics["counters_ratio"] >= 0.5
