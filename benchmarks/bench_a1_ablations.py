"""A1 — ablations of the design choices DESIGN.md calls out.

Not a paper table; this quantifies the protocol's own knobs:

* **include_self** — Figure 1's loop formally includes ``q = p`` (a
  ``(0, 0)`` self-estimate); how much does dropping it matter?
* **WayOff setting** — Appendix A prescribes
  ``WayOff = 16e + 18pT + Delta``; what happens when it is set smaller
  (own clock discarded too eagerly) or much larger (recovery jump fires
  too late / never for moderate displacements)?
* **stagger vs lockstep** — the paper assumes nothing about relative
  Sync times; is lockstep actually different?
* **drift compensation** — the Section 5 extension vs plain Sync on
  worst-case (extremal) clocks.

Expected shape: include_self and stagger are second-order; WayOff is
empirically insensitive over four orders of magnitude — it only gates
the own-clock-discard branch, which good clocks never approach, so the
Appendix A prescription is a *lower* bound the practice is forgiving
about (an extreme WayOff x 0.01 merely makes a displaced node jump
immediately instead of after one interval); compensation visibly
tightens extremal-clock deviation.
"""

from __future__ import annotations

import dataclasses

from _util import emit, once

from repro.metrics.report import table
from repro.runner.builders import (
    benign_scenario,
    default_params,
    mobile_byzantine_scenario,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run
from repro.runner.scenario import extremal_clocks


def measure(params, *, seed=12, **scenario_kwargs):
    byz = run(mobile_byzantine_scenario(params, duration=12.0, seed=seed,
                                        **scenario_kwargs))
    rec = run(recovery_scenario(params, duration=12.0, seed=seed,
                                **scenario_kwargs))
    report = rec.recovery(tolerance=default_params(n=params.n, f=params.f,
                                                   pi=params.pi).bounds().max_deviation)
    discards = len(byz.trace.discarded_own_clock())
    return (byz.max_deviation(warmup_for(params)),
            report.max_recovery_time if report.events else float("nan"),
            discards)


def run_a1():
    base = default_params(n=7, f=2, pi=4.0)
    rows = []

    dev, rec, disc = measure(base)
    rows.append(["baseline (paper settings)", dev, rec, disc])

    no_self = dataclasses.replace(base, include_self=False)
    dev, rec, disc = measure(no_self)
    rows.append(["include_self = False", dev, rec, disc])

    for factor in (0.01, 0.25, 4.0, 16.0):
        tweaked = dataclasses.replace(base, way_off=base.way_off * factor,
                                      strict=False)
        dev, rec, disc = measure(tweaked)
        rows.append([f"WayOff x {factor:g}", dev, rec, disc])

    dev, rec, disc = measure(base, stagger_phases=False)
    rows.append(["lockstep sync phases", dev, rec, disc])

    # Clock-reading quantization: epsilon effectively grows by the tick.
    import dataclasses as _dc
    from repro.clocks.hardware import QuantizedClock
    from repro.runner.scenario import wander_clocks

    tick = 0.002

    def quantized(node, p, rng, horizon):
        return QuantizedClock(wander_clocks(node, p, rng, horizon), tick)

    q_params = _dc.replace(base, epsilon=base.epsilon + tick, strict=False)
    q_result = run(benign_scenario(q_params, duration=12.0, seed=12,
                                   clock_factory=quantized))
    rows.append([f"quantized readings (tick {tick:g})",
                 q_result.max_deviation(6.0), "-", "-"])

    plain = run(benign_scenario(base, duration=12.0, seed=12,
                                clock_factory=extremal_clocks))
    comp = run(benign_scenario(base, duration=12.0, seed=12,
                               clock_factory=extremal_clocks,
                               protocol="drift-compensating"))
    rows.append(["extremal clocks, plain sync", plain.max_deviation(6.0), "-", "-"])
    rows.append(["extremal clocks, drift-compensating", comp.max_deviation(6.0), "-", "-"])
    return rows, base


def test_a1_ablations(benchmark):
    rows, params = once(benchmark, run_a1)
    bound = params.bounds().max_deviation
    emit("a1_ablations", table(
        ["variant", "byzantine_max_dev", "recovery_time", "own_discards"],
        rows,
        title=f"A1: design-choice ablations (deviation bound {bound:.4g}, "
              f"PI={params.pi:g})",
        precision=4,
    ))
    by_name = {row[0]: row for row in rows}
    # Baseline and benign-knob variants stay within the bound.
    for name in ("baseline (paper settings)", "include_self = False",
                 "lockstep sync phases", "WayOff x 4", "WayOff x 16",
                 "WayOff x 0.01"):
        assert by_name[name][1] <= bound, name
    # Every variant with a WayOff >= bound still recovers within PI.
    for name in ("baseline (paper settings)", "WayOff x 4"):
        assert by_name[name][2] < params.pi
    # Compensation helps on extremal clocks.
    assert (by_name["extremal clocks, drift-compensating"][1]
            < by_name["extremal clocks, plain sync"][1])
