"""E4 — Claim 8(iii) / Lemma 7(iii): geometric recovery.

Regenerates the recovery table: a victim is released with its clock
displaced by a sweep of multiples of WayOff; we record its distance to
the good range at every interval T after release, the measured recovery
time, and the Claim 8 prediction (distance halves per interval, so
recovery needs ~log2(displacement / C) intervals).  Expected shape:
per-interval halving, recovery time growing logarithmically (not
linearly) in the displacement, and recovery completing well within PI.
"""

from __future__ import annotations

import math

from _util import emit, once

from repro.core.analysis import halving_holds, recovery_trajectory
from repro.metrics.report import check_mark, table
from repro.runner.builders import default_params, recovery_scenario
from repro.runner.experiment import run


# Below 1.0 the victim stays inside WayOff and converges by repeated
# halving (Lemma 7(iii)); above 1.0 the Figure 1 else-branch jumps it
# back in one Sync (the paper's fast-recovery design choice).
DISPLACEMENT_FACTORS = [0.4, 0.9, 1.05, 2.0, 8.0, 32.0, 128.0]


def run_e4():
    params = default_params(n=7, f=2, pi=4.0)
    bound = params.bounds()
    rows = []
    trajectories = []
    for factor in DISPLACEMENT_FACTORS:
        displacement = factor * params.way_off
        scenario = recovery_scenario(params, duration=12.0, seed=4,
                                     victims=[0], displacement=displacement)
        result = run(scenario)
        report = result.recovery()
        event = report.events[0]
        trajectory = recovery_trajectory(result.samples, result.corruptions,
                                         params, event.node, event.released_at,
                                         intervals=12)
        halves = halving_holds(trajectory, slack=bound.max_deviation)
        intervals_needed = (event.recovery_time / params.t_interval
                            if math.isfinite(event.recovery_time) else math.inf)
        predicted = max(1.0, math.log2(max(displacement / max(bound.c, 1e-12), 2.0)))
        rows.append([
            factor, displacement, event.recovery_time, intervals_needed,
            predicted, check_mark(halves),
            check_mark(event.recovery_time < params.pi),
        ])
        trajectories.append((factor, [s.distance for s in trajectory[:8]]))
    return rows, trajectories


def test_e4_geometric_recovery(benchmark):
    rows, trajectories = once(benchmark, run_e4)
    emit("e4_recovery", table(
        ["disp/WayOff", "displacement", "recovery_time", "intervals",
         "log2_prediction", "halving", "< PI"],
        rows,
        title="E4: recovery time vs displacement (Claim 8(iii): halving per T)",
        precision=4,
    ) + "\n\n" + table(
        ["disp/WayOff"] + [f"T{i}" for i in range(8)],
        [[factor] + distances for factor, distances in trajectories],
        title="E4b: victim distance to good range at interval ends",
        precision=3,
    ))
    for row in rows:
        assert row[-1] == "OK", "recovery must complete within PI"
        assert row[-2] == "OK", "distance must halve per interval"
    # Log-shape: 128x displacement must not take 128/1.05 times longer
    # than the 1.05x case — it should take only a few more intervals.
    assert rows[-1][3] <= rows[0][3] + 10
