"""Shared helpers for the benchmark harness.

Every bench regenerates one experiment from EXPERIMENTS.md, prints its
result table (visible under ``pytest benchmarks/ --benchmark-only -s``)
and writes it to ``benchmarks/results/<experiment>.txt`` so the numbers
recorded in EXPERIMENTS.md can be reproduced and diffed.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, content: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print()
    print(content)
    (RESULTS_DIR / f"{name}.txt").write_text(content + "\n")


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing.

    The heavyweight experiment benches measure end-to-end wall time of
    a full scenario; repeating them dozens of times would make the
    suite unusably slow without changing the verdicts, so we pin
    rounds/iterations to 1.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
