"""Shared helpers for the benchmark harness.

Every bench regenerates one experiment from EXPERIMENTS.md, prints its
result table (visible under ``pytest benchmarks/ --benchmark-only -s``)
and writes it to ``benchmarks/results/<experiment>.txt`` so the numbers
recorded in EXPERIMENTS.md can be reproduced and diffed.
"""

from __future__ import annotations

import pathlib

from repro.runner.campaign import Campaign, RunRecord
from repro.runner.scenario import Scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def campaign_records(scenarios: list[Scenario], *,
                     workers: int | None = None,
                     warmup_intervals: float = 3.0) -> list[RunRecord]:
    """Run a list of scenarios through the Campaign executor.

    Benches deliberately do NOT pass a ``cache_dir``: cache keys include
    the package version, which does not change between commits, so a
    persistent cache would happily serve results from stale code.
    """
    result = Campaign.from_scenarios(
        scenarios, warmup_intervals=warmup_intervals).run(workers=workers)
    for record in result.records:
        if record.error is not None:
            raise RuntimeError(
                f"bench run {record.index} ({record.name}) failed: "
                f"{record.error}")
    return list(result.records)


def emit(name: str, content: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    print()
    print(content)
    (RESULTS_DIR / f"{name}.txt").write_text(content + "\n")


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing.

    The heavyweight experiment benches measure end-to-end wall time of
    a full scenario; repeating them dozens of times would make the
    suite unusably slow without changing the verdicts, so we pin
    rounds/iterations to 1.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
