"""E11 — Section 5 open question: behaviour from arbitrary initial state.

"An alternative way of asking the same question is what happens when
the adversary is limited, but the initial clock values of the
processors are arbitrary ... it is desirable to improve the protocol
and/or analysis to also guarantee self stabilization."  The paper does
NOT prove self-stabilization ("it is not clear if our algorithm is self
stabilizing"); this experiment measures it empirically.

We initialize every clock uniformly over a sweep of spreads (up to 5
orders of magnitude beyond WayOff, modelling "the adversary was too
powerful for a while"), then run with an f-limited adversary and record
the time until the good-set deviation first enters (and stays in) the
Theorem 5 envelope.  Expected shape: convergence in a couple of
analysis intervals, nearly independent of the initial spread (the
WayOff branch collapses any spread geometrically), supporting the
paper's conjecture for the benign-start case.
"""

from __future__ import annotations

import random

from _util import emit, once

from repro.metrics.report import check_mark, table
from repro.runner.builders import default_params, mobile_byzantine_scenario
from repro.runner.experiment import run


SPREADS = [1.0, 10.0, 100.0, 1e3, 1e4]  # multiples of WayOff


def stabilization_time(result, bound):
    """First sample time after which deviation stays within bound."""
    series = result.deviation_series()
    last_bad = None
    for tau, deviation in series:
        if deviation > bound:
            last_bad = tau
    if last_bad is None:
        return 0.0
    after = [tau for tau, _ in series if tau > last_bad]
    return after[0] if after else float("inf")


def run_e11():
    params = default_params(n=7, f=2, pi=4.0)
    bound = params.bounds().max_deviation
    rng = random.Random(99)
    rows = []
    for factor in SPREADS:
        spread = factor * params.way_off
        offsets = [rng.uniform(-spread / 2, spread / 2) for _ in range(params.n)]
        scenario = mobile_byzantine_scenario(params, duration=16.0, seed=11)
        scenario.initial_offsets = offsets
        result = run(scenario)
        t_stable = stabilization_time(result, bound)
        rows.append([
            factor, spread, t_stable, t_stable / params.t_interval,
            check_mark(t_stable < params.pi),
        ])
    return rows, params


def test_e11_self_stabilization(benchmark):
    rows, params = once(benchmark, run_e11)
    emit("e11_stabilization", table(
        ["spread/WayOff", "initial_spread", "stabilize_time",
         "T-intervals", "< PI"],
        rows,
        title=("E11: convergence from arbitrary initial clocks under the "
               f"f-limited adversary (T={params.t_interval:.3g}, "
               f"PI={params.pi:g}) — empirical self-stabilization"),
        precision=4,
    ))
    for row in rows:
        assert row[-1] == "OK", "must stabilize within one adversary period"
    # Log-like dependence on the spread: 10^4x spread must not take
    # 10^4x longer.
    times = [row[2] for row in rows]
    assert times[-1] <= times[0] + 6 * params.t_interval
