"""E9 — Section 3.3 "known values": overestimating delta and rho.

The protocol never uses delta, rho, or epsilon directly — only the
derived tunables MaxWait / SyncInt / WayOff, which "may overestimate
them by a multiplicative factor without much harm."  We run the true
network (delta, rho fixed) with tunables derived from inflated
estimates and measure what is actually achieved.  Expected shape:
measured deviation and recovery time degrade roughly linearly with the
overestimation factor (the *bound* scales with the factor), but the
guarantee — measured below the inflated deployment's own bound — holds
at every factor; nothing breaks.
"""

from __future__ import annotations

import dataclasses

from _util import emit, once

from repro.metrics.report import check_mark, table
from repro.runner.builders import (
    default_params,
    mobile_byzantine_scenario,
    recovery_scenario,
    warmup_for,
)
from repro.runner.experiment import run


FACTORS = [(1.0, 1.0), (2.0, 1.0), (4.0, 1.0), (1.0, 4.0), (4.0, 4.0)]


def run_e9():
    true = default_params(n=7, f=2, pi=8.0)
    rows = []
    for delta_factor, rho_factor in FACTORS:
        params = true.scaled(delta_factor=delta_factor, rho_factor=rho_factor)
        inflated_bound = params.bounds().max_deviation
        byz = run(mobile_byzantine_scenario(params, duration=20.0, seed=9))
        measured = byz.max_deviation(warmup_for(params))
        rec = run(recovery_scenario(params, duration=20.0, seed=9)).recovery(
            tolerance=inflated_bound)
        rows.append([
            delta_factor, rho_factor,
            params.max_wait, params.way_off,
            measured, inflated_bound,
            check_mark(measured <= inflated_bound),
            rec.max_recovery_time,
            check_mark(rec.all_recovered),
        ])
    return rows


def test_e9_overestimated_parameters(benchmark):
    rows = once(benchmark, run_e9)
    emit("e9_param_overestimate", table(
        ["delta_x", "rho_x", "MaxWait", "WayOff", "measured_dev",
         "deploy_bound", "dev_ok", "recovery_time", "recovered"],
        rows,
        title="E9: tunables derived from overestimated delta/rho — graceful "
              "degradation, no failures (true delta/rho unchanged underneath)",
        precision=4,
    ))
    for row in rows:
        assert row[6] == "OK" and row[8] == "OK"
    # Degradation is roughly proportional: the 4x-delta deployment's
    # bound is ~4x the 1x bound, not catastrophically worse.
    base_bound = rows[0][5]
    four_x = rows[2][5]
    assert 2.0 <= four_x / base_bound <= 8.0
