"""E12 — Section 1.1: convergence-function Sync vs broadcast-based [10].

Regenerates the qualitative comparison table of Section 1.1 as
measurements.  Four axes:

* **resilience threshold** — [10] works with a bare majority
  (n = 2f+1); Sync needs n >= 3f+1;
* **undetected recovery** — Sync recovers a victim whose clock AND
  internal state were scrambled, with no detection signal; [10]'s join
  rule needs the fault to be *detected*, so the undetected victim never
  rejoins;
* **detected recovery** — with detection granted, [10] also recovers;
* **message cost** — broadcast floods signature chains; Sync exchanges
  fixed-size point-to-point pings.

Expected shape: each family wins exactly the axes the paper says it
wins.
"""

from __future__ import annotations

import dataclasses
import math
import random

from _util import emit, once

from repro.adversary.base import ByzantineStrategy
from repro.adversary.mobile import single_burst_plan
from repro.metrics.report import table
from repro.runner.builders import benign_scenario, default_params, warmup_for
from repro.runner.experiment import run


class ScrambleState(ByzantineStrategy):
    """Scramble the victim's clock and (if present) its epoch counter —
    full Byzantine control of internal state, with no detection."""

    name = "scramble-state"

    def __init__(self, clock_offset: float, epoch_offset: int = 50) -> None:
        self.clock_offset = clock_offset
        self.epoch_offset = epoch_offset

    def on_leave(self, process, rng: random.Random) -> None:
        process.clock.hijack_set(process.sim.now,
                                 process.clock.adj + self.clock_offset)
        # Scramble whichever round/epoch counter the protocol keeps.
        if hasattr(process, "epoch"):
            process.epoch += self.epoch_offset
        if hasattr(process, "round_no"):
            process.round_no += self.epoch_offset


def scramble_scenario(params, protocol, seed=14, duration=14.0):
    def plan(scenario, clocks):
        return single_burst_plan(
            [0], start=2.0, dwell=1.0,
            strategy_factory=lambda n, e: ScrambleState(6.0 * params.way_off))

    scenario = benign_scenario(params, duration=duration, seed=seed,
                               protocol=protocol)
    return dataclasses.replace(scenario, plan_builder=plan)


def run_e12():
    params = default_params(n=7, f=2, pi=4.0)
    bound = params.bounds().max_deviation
    rows = []

    for label, protocol in (("sync (paper)", "sync"),
                            ("broadcast [10], undetected faults",
                             "broadcast-undetected"),
                            ("broadcast [10], detected faults",
                             "broadcast-detected"),
                            ("srikanth-toueg [27]", "srikanth-toueg"),
                            ("interactive convergence [19]",
                             "interactive-convergence")):
        benign = run(benign_scenario(params, duration=14.0, seed=14,
                                     protocol=protocol))
        recov = run(scramble_scenario(params, protocol))
        report = recov.recovery(tolerance=bound)
        rec_time = report.max_recovery_time if report.events else math.nan
        rows.append([
            label,
            benign.max_deviation(warmup_for(params)),
            benign.messages_delivered,
            rec_time if math.isfinite(rec_time) else math.inf,
            "OK" if (report.events and report.all_recovered) else "NEVER",
        ])

    # Resilience threshold: n = 2f+1 = 5 with f = 2.
    majority_params = dataclasses.replace(default_params(n=7, f=2, pi=4.0),
                                          n=5, strict=False)
    for label, protocol in (("broadcast [10] at n=2f+1=5",
                             "broadcast-undetected"),
                            ("srikanth-toueg [27] at n=2f+1=5",
                             "srikanth-toueg")):
        majority = run(benign_scenario(majority_params, duration=14.0,
                                       seed=15, protocol=protocol))
        rows.append([
            label,
            majority.max_deviation(warmup_for(majority_params)),
            majority.messages_delivered, "-", "-",
        ])
    return rows, bound


def test_e12_broadcast_comparison(benchmark):
    rows, bound = once(benchmark, run_e12)
    emit("e12_broadcast", table(
        ["protocol", "benign_dev", "messages", "undetected_recovery_time",
         "recovers"],
        rows,
        title=f"E12: Sync vs broadcast-based [10] (deviation bound {bound:.4g}; "
              "recovery workload scrambles clock AND internal state, "
              "no detection signal)",
        precision=4,
    ))
    by_name = {row[0]: row for row in rows}
    assert by_name["sync (paper)"][4] == "OK"
    assert by_name["broadcast [10], undetected faults"][4] == "NEVER"
    assert by_name["broadcast [10], detected faults"][4] == "OK"
    # [27] also fails undetected recovery: its round counter is internal
    # state with no join rule.
    assert by_name["srikanth-toueg [27]"][4] == "NEVER"
    # The majority-resilience advantage of the authenticated family.
    assert by_name["broadcast [10] at n=2f+1=5"][1] <= bound
    assert by_name["srikanth-toueg [27] at n=2f+1=5"][1] <= bound
    # All protocols synchronize fine in the benign case.
    for row in rows:
        assert row[1] <= bound
