"""Substrate microbenchmarks: simulator and network throughput.

Not a paper experiment — these keep the simulator's performance visible
so that regressions in the substrate (which every experiment's wall
time depends on) are caught.  Run with normal pytest-benchmark
statistics (many rounds), unlike the one-shot experiment benches.
"""

from __future__ import annotations

import dataclasses
import json
import time

from _util import emit

from repro.adversary.plans import PlanSpec, StrategySpec
from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.metrics.columns import backend_name
from repro.metrics.report import table
from repro.net.links import FixedDelay
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.runner.builders import benign_scenario, default_params, mobile_byzantine_scenario
from repro.runner.campaign import run_config
from repro.runner.experiment import run
from repro.runner.scenario import Scenario
from repro.runner.vector import run_batch, vector_spec
from repro.sim.engine import Simulator
from repro.sim.process import Process, SimRuntime


def test_event_throughput(benchmark):
    """Schedule-and-run 10k chained timer events."""

    def chain_events():
        sim = Simulator(seed=0)
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(chain_events)
    assert events == 10_000


def test_runtime_dispatch_overhead(benchmark):
    """Cost of the NodeRuntime seam: 10k chained timers scheduled through
    ``SimRuntime.set_local_timer`` versus raw ``sim.schedule``.

    The strict regression bar lives in tools/bench_gate.py, which holds
    the end-to-end events/sec figure (now dispatched entirely through
    ``SimRuntime``) within 5% of the direct-dispatch PR 4 baseline.
    This microbench isolates the seam itself so a future regression is
    attributable, and asserts only a generous sanity ratio.
    """

    def chain_raw():
        sim = Simulator(seed=0)
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return sim.events_processed

    def chain_runtime():
        sim = Simulator(seed=0)
        network = Network(sim, full_mesh(2), FixedDelay(delta=0.01, value=0.001))
        runtime = SimRuntime(0, sim, network,
                             LogicalClock(FixedRateClock(rho=0.0)))
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                runtime.set_local_timer(0.001, tick)

        runtime.set_local_timer(0.001, tick)
        sim.run()
        return sim.events_processed

    import time

    def sample(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    raw_s = sample(chain_raw)
    seam_s = benchmark(chain_runtime)
    # benchmark() returns the function's result; re-time for the table.
    seam_best = sample(chain_runtime)
    ratio = seam_best / raw_s if raw_s > 0 else float("inf")
    emit("runtime_dispatch", table(
        ["raw_s", "seam_s", "ratio"],
        [[raw_s, seam_best, ratio]],
        title="SimRuntime timer dispatch vs raw sim.schedule (10k events)",
        precision=4,
    ))
    # Sanity only: the seam adds one tag format + handle allocation per
    # timer.  Anything past 2x means an accidental hot-path regression.
    assert ratio < 2.0


class _Echo(Process):
    def on_message(self, message):
        if message.payload < 20:
            self.send(message.sender, message.payload + 1)


def test_message_roundtrip_throughput(benchmark):
    """Ping-pong bursts across a 10-node mesh."""

    def run_mesh():
        sim = Simulator(seed=0)
        network = Network(sim, full_mesh(10), FixedDelay(delta=0.01, value=0.001))
        for i in range(10):
            network.bind(_Echo(SimRuntime(i, sim, network,
                                          LogicalClock(FixedRateClock(rho=0.0)))))
        for i in range(10):
            for j in range(10):
                if i != j:
                    network.send(i, j, 0)
        sim.run()
        return network.messages_delivered

    delivered = benchmark(run_mesh)
    assert delivered > 900


def test_full_scenario_wall_time(benchmark):
    """End-to-end cost of a standard benign run (n=7, 5 simulated s)."""

    def scenario_run():
        result = run(benign_scenario(default_params(), duration=5.0, seed=1))
        return result.events_processed

    events = benchmark.pedantic(scenario_run, rounds=3, iterations=1)
    assert events > 1000


def test_engine_throughput_e1_workload(benchmark):
    """Events/sec on the E1 headline workload, from the engine's own
    perf counters (the number the hot-path work is judged by)."""

    def e1_run():
        params = default_params(n=7, f=2, delta=0.005, pi=4.0)
        result = run(mobile_byzantine_scenario(params, duration=16.0, seed=1))
        return result.perf

    perf = benchmark.pedantic(e1_run, rounds=3, iterations=1)
    emit("engine_throughput", table(
        ["events", "wall_s", "events_per_sec", "heap_high_water", "cancelled_ratio"],
        [[perf.events_processed, perf.run_wall_time, perf.events_per_second,
          perf.heap_high_water, perf.cancelled_ratio]],
        title="Engine throughput on the E1 workload (n=7, f=2, 16 simulated s)",
        precision=4,
    ))
    assert perf.events_processed > 1000
    assert perf.events_per_second > 0.0


# --------------------------------------------------------------------------
# Mega-sim batch mode: the vector backend against the scalar reference.


def mega_scenario(n: int, seed: int, duration_intervals: float) -> Scenario:
    """The mega-sim campaign workload: full mesh, rotating silent faults.

    Full mesh keeps every node in every round's estimation exchange (the
    densest event schedule per simulated second), the rotating silent
    plan exercises the crash/recovery masking on both backends, and the
    lossless links keep the scalar comparator honest — loss barely
    changes scalar wall time but adds a draw per delivery to the vector
    hot loop, so a lossy workload would flatter the speedup's
    denominator.
    """
    params = default_params(n=n, f=2, delta=0.002, rho=1e-3, pi=1.0,
                            target_k=8)
    return Scenario(
        params=params,
        duration=duration_intervals * params.sync_interval,
        seed=seed,
        plan_builder=PlanSpec(kind="rotating",
                              strategy=StrategySpec(name="silent")),
        initial_offset_spread=0.0005,
        sample_interval=params.sync_interval / 4.0,
        name=f"mega-n{n}-seed{seed}",
    )


def _record_bytes(record) -> str:
    return json.dumps(dataclasses.asdict(record), sort_keys=True,
                      default=repr)


def measure_mega_sim(n: int = 64, batch_seeds: int = 256,
                     duration_intervals: float = 8.0,
                     scalar_seeds: int = 2) -> dict:
    """Vector-batch throughput vs the scalar engine, same workload.

    Both figures are *effective* events/sec — engine-reported events
    divided by wall time including per-run setup (stream derivation,
    clock construction), measured in the same process.  The scalar legs
    run before and after the batch and the better pass is kept, so a
    mid-measurement machine-speed shift cannot manufacture a speedup.
    The ratio, not the absolute rates, is the machine-portable figure.

    Also replays seed 0 through both backends via the campaign executor
    and compares the full ``RunRecord`` JSON — ``record_parity`` is 1.0
    only when the records are byte-identical.
    """
    scenarios = [mega_scenario(n, seed, duration_intervals)
                 for seed in range(batch_seeds)]

    config = scenarios[0].to_config()
    scalar_record = run_config(config, warmup_intervals=1.0,
                               stream_measures=True, backend="scalar")
    vector_record = run_config(config, warmup_intervals=1.0,
                               stream_measures=True, backend="vector")
    parity = float(_record_bytes(scalar_record)
                   == _record_bytes(vector_record))

    def scalar_pass() -> tuple[int, float]:
        events = 0
        start = time.perf_counter()
        for scenario in scenarios[:scalar_seeds]:
            events += run(scenario, stream_measures=True).events_processed
        return events, time.perf_counter() - start

    scalar_events, wall_before = scalar_pass()

    specs = [vector_spec(scenario, stream_measures=True)
             for scenario in scenarios]
    batch = run_batch(specs)

    _, wall_after = scalar_pass()
    scalar_eps = scalar_events / min(wall_before, wall_after)
    vector_eps = batch.events_per_second()

    return {
        "n": n,
        "batch_seeds": batch_seeds,
        "duration_intervals": duration_intervals,
        "batch_events": batch.events_processed,
        "batch_wall_s": batch.wall_time,
        "scalar_events_per_sec": scalar_eps,
        "vector_events_per_sec": vector_eps,
        "speedup": vector_eps / scalar_eps if scalar_eps > 0.0 else 0.0,
        "record_parity": parity,
        "columns_backend": backend_name(),
    }


def mega_table(metrics: dict) -> str:
    return table(
        ["n", "seeds", "events", "scalar_ev_s", "vector_ev_s", "speedup",
         "parity"],
        [[metrics["n"], metrics["batch_seeds"], metrics["batch_events"],
          metrics["scalar_events_per_sec"], metrics["vector_events_per_sec"],
          metrics["speedup"], metrics["record_parity"]]],
        title=(f"Mega-sim batch throughput "
               f"({metrics['columns_backend']} columns backend)"),
        precision=2,
    )


def test_mega_sim_batch_smoke(benchmark):
    """Small-batch smoke of the gate-grade measurement (full scale runs
    under ``tools/bench_gate.py``, which records the ``mega_sim``
    section of ``BENCH_PR4.json``)."""

    metrics = benchmark.pedantic(
        lambda: measure_mega_sim(n=16, batch_seeds=8,
                                 duration_intervals=3.0, scalar_seeds=1),
        rounds=1, iterations=1)
    emit("mega_sim_smoke", mega_table(metrics))
    assert metrics["record_parity"] == 1.0
    assert metrics["batch_events"] > 1000
    # The real bar lives in bench_gate.py LIMITS; here only sanity.
    assert metrics["speedup"] > 1.0
