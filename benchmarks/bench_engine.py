"""Substrate microbenchmarks: simulator and network throughput.

Not a paper experiment — these keep the simulator's performance visible
so that regressions in the substrate (which every experiment's wall
time depends on) are caught.  Run with normal pytest-benchmark
statistics (many rounds), unlike the one-shot experiment benches.
"""

from __future__ import annotations

from _util import emit

from repro.clocks.hardware import FixedRateClock
from repro.clocks.logical import LogicalClock
from repro.metrics.report import table
from repro.net.links import FixedDelay
from repro.net.network import Network
from repro.net.topology import full_mesh
from repro.runner.builders import benign_scenario, default_params, mobile_byzantine_scenario
from repro.runner.experiment import run
from repro.sim.engine import Simulator
from repro.sim.process import Process, SimRuntime


def test_event_throughput(benchmark):
    """Schedule-and-run 10k chained timer events."""

    def chain_events():
        sim = Simulator(seed=0)
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(chain_events)
    assert events == 10_000


def test_runtime_dispatch_overhead(benchmark):
    """Cost of the NodeRuntime seam: 10k chained timers scheduled through
    ``SimRuntime.set_local_timer`` versus raw ``sim.schedule``.

    The strict regression bar lives in tools/bench_gate.py, which holds
    the end-to-end events/sec figure (now dispatched entirely through
    ``SimRuntime``) within 5% of the direct-dispatch PR 4 baseline.
    This microbench isolates the seam itself so a future regression is
    attributable, and asserts only a generous sanity ratio.
    """

    def chain_raw():
        sim = Simulator(seed=0)
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return sim.events_processed

    def chain_runtime():
        sim = Simulator(seed=0)
        network = Network(sim, full_mesh(2), FixedDelay(delta=0.01, value=0.001))
        runtime = SimRuntime(0, sim, network,
                             LogicalClock(FixedRateClock(rho=0.0)))
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                runtime.set_local_timer(0.001, tick)

        runtime.set_local_timer(0.001, tick)
        sim.run()
        return sim.events_processed

    import time

    def sample(fn):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    raw_s = sample(chain_raw)
    seam_s = benchmark(chain_runtime)
    # benchmark() returns the function's result; re-time for the table.
    seam_best = sample(chain_runtime)
    ratio = seam_best / raw_s if raw_s > 0 else float("inf")
    emit("runtime_dispatch", table(
        ["raw_s", "seam_s", "ratio"],
        [[raw_s, seam_best, ratio]],
        title="SimRuntime timer dispatch vs raw sim.schedule (10k events)",
        precision=4,
    ))
    # Sanity only: the seam adds one tag format + handle allocation per
    # timer.  Anything past 2x means an accidental hot-path regression.
    assert ratio < 2.0


class _Echo(Process):
    def on_message(self, message):
        if message.payload < 20:
            self.send(message.sender, message.payload + 1)


def test_message_roundtrip_throughput(benchmark):
    """Ping-pong bursts across a 10-node mesh."""

    def run_mesh():
        sim = Simulator(seed=0)
        network = Network(sim, full_mesh(10), FixedDelay(delta=0.01, value=0.001))
        for i in range(10):
            network.bind(_Echo(SimRuntime(i, sim, network,
                                          LogicalClock(FixedRateClock(rho=0.0)))))
        for i in range(10):
            for j in range(10):
                if i != j:
                    network.send(i, j, 0)
        sim.run()
        return network.messages_delivered

    delivered = benchmark(run_mesh)
    assert delivered > 900


def test_full_scenario_wall_time(benchmark):
    """End-to-end cost of a standard benign run (n=7, 5 simulated s)."""

    def scenario_run():
        result = run(benign_scenario(default_params(), duration=5.0, seed=1))
        return result.events_processed

    events = benchmark.pedantic(scenario_run, rounds=3, iterations=1)
    assert events > 1000


def test_engine_throughput_e1_workload(benchmark):
    """Events/sec on the E1 headline workload, from the engine's own
    perf counters (the number the hot-path work is judged by)."""

    def e1_run():
        params = default_params(n=7, f=2, delta=0.005, pi=4.0)
        result = run(mobile_byzantine_scenario(params, duration=16.0, seed=1))
        return result.perf

    perf = benchmark.pedantic(e1_run, rounds=3, iterations=1)
    emit("engine_throughput", table(
        ["events", "wall_s", "events_per_sec", "heap_high_water", "cancelled_ratio"],
        [[perf.events_processed, perf.run_wall_time, perf.events_per_second,
          perf.heap_high_water, perf.cancelled_ratio]],
        title="Engine throughput on the E1 workload (n=7, f=2, 16 simulated s)",
        precision=4,
    ))
    assert perf.events_processed > 1000
    assert perf.events_per_second > 0.0
