#!/usr/bin/env python3
"""Proactive security on top of Sync: clock-driven key refresh, live.

The paper's motivating application (Section 1): proactive security
protocols periodically refresh secrets so that whatever an attacker
stole becomes useless — but "the security and reliability of such
periodical protocols depend on securely synchronized clocks."  This
example runs that missing layer end-to-end using
:class:`repro.service.RefreshingSyncProcess`:

* every processor runs Sync under a rotating f-limited Byzantine
  adversary that eventually corrupts *all* of them;
* on top, each processor rotates its (simulated) key share whenever its
  logical clock crosses an epoch boundary, gossiping announcements;
* the epoch is *derived from the clock* — a recovered processor
  re-derives the correct epoch with no detection signal.

The security property checked live: all good processors' key epochs
agree to within one at every instant, so a threshold of combinable
fresh shares always exists and exposed shares age out on schedule.
The same workload on free-running clocks is shown to break it.

Usage:
    python examples/proactive_refresh.py
"""

from __future__ import annotations

from repro import default_params, mobile_byzantine_scenario, run
from repro.metrics.report import table
from repro.metrics.sampler import good_set
from repro.service import make_refreshing

EPOCH_LEN = 0.5  # logical-clock seconds per key epoch


def epoch_agreement(result, warmup: float):
    """(#instants checked, #violations, worst spread) over good nodes."""
    params = result.params
    checked = violations = worst = 0
    for i, tau in enumerate(result.samples.times):
        if tau < warmup:
            continue
        good = good_set(result.corruptions, tau, params.pi, params.n)
        if len(good) < 2:
            continue
        epochs = [int(result.samples.clocks[node][i] // EPOCH_LEN)
                  for node in good]
        spread = max(epochs) - min(epochs)
        checked += 1
        worst = max(worst, spread)
        if spread > 1:
            violations += 1
    return checked, violations, worst


def main() -> int:
    params = default_params(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0)
    warmup = 2.0
    duration = 24.0
    print(f"Key epochs of {EPOCH_LEN}s logical time; n={params.n}, "
          f"f={params.f}, PI={params.pi}.")
    print("Rotating Byzantine adversary corrupts every processor over "
          "the run.\n")

    rows = []
    live = None
    for protocol in (make_refreshing(EPOCH_LEN), "drift-only"):
        label = "sync + refresh layer" if callable(protocol) else protocol
        result = run(mobile_byzantine_scenario(params, duration=duration,
                                               seed=3, protocol=protocol))
        checked, violations, worst = epoch_agreement(result, warmup)
        rows.append([label, checked, violations, worst,
                     "SECURE" if violations == 0 else "STALLED/INSECURE"])
        if callable(protocol):
            live = result

    print(table(
        ["clock layer", "instants", "epoch violations", "worst spread",
         "proactive refresh"],
        rows,
        title="Epoch agreement among good processors (violation = good "
              "epochs differ by > 1)",
    ))

    if live is not None:
        rotations = {node: len(p.rotations)
                     for node, p in live.processes.items()}
        final = {node: p.key_epoch for node, p in live.processes.items()}
        print(f"\nlive rotations per node: {list(rotations.values())}")
        print(f"final key epochs:        {list(final.values())} "
              f"(spread {max(final.values()) - min(final.values())})")

    ok = rows[0][2] == 0 and rows[1][2] > 0
    print("\nWith Sync underneath, refresh stays on schedule through "
          "unbounded total corruptions —\nrecovered nodes re-derive their "
          "epoch from the clock, no detection needed; without it,\none "
          "scrambled clock permanently desynchronizes the epochs." if ok else
          "\nUnexpected outcome — inspect the series above.")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
