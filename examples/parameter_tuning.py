#!/usr/bin/env python3
"""Parameter tuning: pick SyncInt / MaxWait / WayOff for a deployment.

Given a deployment's physical facts — network delay bound delta, clock
drift rho, how fast the adversary can move (PI), how many simultaneous
faults to tolerate (f) — this example walks the Section 3.2 / Theorem 5
math to answer the operator's questions:

1. What deviation bound do I get, and how does it split into the
   epsilon / drift / residue terms?
2. How fast do I have to sync (K) before the residue term C stops
   mattering?
3. What is the message cost of tightening the bound?
4. What if I can only *overestimate* delta and rho (Section 3.3)?

It then validates the chosen configuration with a short adversarial
simulation.

Usage:
    python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import ProtocolParams, default_params, mobile_byzantine_scenario, run
from repro.metrics.report import check_mark, table
from repro.runner.builders import warmup_for

# ----------------------------------------------------------------------
# The deployment's physical facts (edit these for your network).
# ----------------------------------------------------------------------
N = 7          # processors
F = 2          # simultaneous faults to tolerate (needs n >= 3f+1)
DELTA = 0.005  # message delivery bound, seconds
RHO = 5e-4     # hardware drift bound
PI = 4.0       # adversary period: min time between corruption waves


def main() -> int:
    print("Step 1 — sweep the sync rate K and read the Theorem 5 bounds:\n")
    rows = []
    for target_k in (5, 8, 12, 20, 40):
        params = ProtocolParams.derive(n=N, f=F, delta=DELTA, rho=RHO, pi=PI,
                                       target_k=target_k)
        bounds = params.bounds()
        msgs_per_sec = N * (N - 1) * 2 / params.sync_interval
        rows.append([
            bounds.k, params.sync_interval, bounds.c,
            16 * params.epsilon, 18 * params.rho * bounds.t_interval,
            4 * bounds.c, bounds.max_deviation, int(msgs_per_sec),
        ])
    print(table(
        ["K", "SyncInt", "C", "16e term", "18pT term", "4C term",
         "deviation bound", "msgs/s"],
        rows,
        title="Theorem 5(i) bound = 16e + 18pT + 4C, by sync rate",
        precision=4,
    ))
    print("\n=> past K ~ 10 the 4C residue is negligible; the bound is "
          "dominated by 16*epsilon, i.e. by your network delay. Sync "
          "faster only if you need the drift term down.\n")

    print("Step 2 — what if delta/rho are only known as overestimates?\n")
    base = ProtocolParams.derive(n=N, f=F, delta=DELTA, rho=RHO, pi=PI)
    rows = []
    for factor in (1.0, 2.0, 4.0):
        inflated = base.scaled(delta_factor=factor)
        rows.append([factor, inflated.max_wait, inflated.way_off,
                     inflated.bounds().max_deviation])
    print(table(
        ["delta overestimate", "MaxWait", "WayOff", "deviation bound"],
        rows,
        title="Section 3.3: tunables from inflated delta (true network unchanged)",
        precision=4,
    ))
    print("\n=> the achieved bound degrades linearly in the overestimate — "
          "no cliff, no failure (bench E9 validates this empirically).\n")

    print("Step 3 — validate the chosen configuration under attack:\n")
    chosen = ProtocolParams.derive(n=N, f=F, delta=DELTA, rho=RHO, pi=PI,
                                   target_k=12)
    result = run(mobile_byzantine_scenario(chosen, duration=16.0, seed=7))
    verdict = result.verdict(warmup=warmup_for(chosen))
    recovery = result.recovery()
    print(table(
        ["check", "measured", "bound", "holds"],
        [
            ["deviation", verdict.measured_deviation,
             verdict.bounds.max_deviation, check_mark(verdict.deviation_ok)],
            ["drift", verdict.measured_drift,
             verdict.bounds.logical_drift, check_mark(verdict.drift_ok)],
            ["discontinuity", verdict.measured_discontinuity,
             verdict.bounds.discontinuity, check_mark(verdict.discontinuity_ok)],
            ["recovery < PI", recovery.max_recovery_time, chosen.pi,
             check_mark(recovery.max_recovery_time < chosen.pi)],
        ],
        precision=4,
    ))
    print(f"\nChosen: SyncInt={chosen.sync_interval:.4f}s, "
          f"MaxWait={chosen.max_wait:.4f}s, WayOff={chosen.way_off:.4f}s "
          f"(K={chosen.k}).")
    return 0 if verdict.all_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
