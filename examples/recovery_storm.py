#!/usr/bin/env python3
"""Recovery storm: unbounded total faults, visualized as a timeline.

The paper's core contribution over prior work is tolerating an
*unbounded* number of faults over the system's lifetime — the adversary
may corrupt every processor again and again, as long as at most f are
faulty per period PI.  This example runs a long storm (every node
corrupted repeatedly, clocks scrambled to several times WayOff each
time) and prints an ASCII timeline: per interval, which nodes were
faulty and the good-set deviation relative to the Theorem 5 bound.

Usage:
    python examples/recovery_storm.py [duration_seconds]
"""

from __future__ import annotations

import sys

from repro import default_params, run
from repro.adversary.mobile import rotating_plan
from repro.adversary.strategies import RandomClockStrategy
from repro.metrics.measures import deviation_series
from repro.metrics.sampler import faulty_at
from repro.runner.builders import warmup_for
from repro.runner.scenario import Scenario


def main() -> int:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    params = default_params(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0)
    bound = params.bounds().max_deviation

    def plan(scenario, clocks):
        return rotating_plan(
            n=params.n, f=params.f, pi=params.pi, duration=scenario.duration,
            strategy_factory=lambda node, ep: RandomClockStrategy(
                spread=6.0 * params.way_off),
            first_start=2.0 * params.t_interval,
        )

    scenario = Scenario(params=params, duration=duration, seed=42,
                        plan_builder=plan, name="recovery-storm")
    print(f"Storm: {duration:.0f}s, clocks scrambled to ±{3 * params.way_off:.2f}s "
          f"on every break-in, bound {bound:.4f}s.\n")
    result = run(scenario)

    series = dict(deviation_series(result.samples, result.corruptions,
                                   params.pi, params.n))
    step = 1.0
    print(" time  nodes (X=faulty)  good-set deviation (30 chars = bound)")
    t = 0.0
    while t <= duration:
        faulty = faulty_at(result.corruptions, t)
        nodes = "".join("X" if i in faulty else "." for i in range(params.n))
        # Nearest sampled deviation at or after t.
        deviation = next((d for tau, d in series.items() if tau >= t), None)
        if deviation is None:
            bar, label = "", "n/a"
        else:
            bar = "#" * min(30, int(round(30 * deviation / bound)))
            label = f"{deviation:.4f}"
        print(f"{t:5.1f}  {nodes}           |{bar:<30}| {label}")
        t += step

    episodes = len(result.corruptions)
    per_node = {i: sum(1 for c in result.corruptions if c.node == i)
                for i in range(params.n)}
    worst = result.max_deviation(warmup=warmup_for(params))
    recovery = result.recovery()
    print(f"\n{episodes} corruption episodes "
          f"(per node: {[per_node[i] for i in range(params.n)]})")
    print(f"worst good-set deviation: {worst:.4f}s vs bound {bound:.4f}s "
          f"-> {'OK' if worst <= bound else 'VIOLATED'}")
    print(f"all {len(recovery.events)} released nodes recovered: "
          f"{recovery.all_recovered}; worst recovery "
          f"{recovery.max_recovery_time:.3f}s (PI={params.pi}s)")
    return 0 if worst <= bound and recovery.all_recovered else 1


if __name__ == "__main__":
    raise SystemExit(main())
