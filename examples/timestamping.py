#!/usr/bin/env python3
"""Secure time-stamping: the Haber-Stornetta motivation [14], live.

Section 1: "some security tasks require securely synchronized clocks
by their very definition, for example time-stamping [14]".  A
time-stamping service certifies *when* a document existed; its security
reduces to two clock properties across the (distributed, periodically
corrupted) notary cluster:

1. **Monotone certification**: if document A was submitted strictly
   after document B plus the deviation window, then every good notary's
   timestamp for A exceeds its timestamp for B — corrupted-and-recovered
   notaries must not certify time inversions.
2. **Cross-notary comparability**: two good notaries' timestamps for
   the *same* submission differ by at most the Theorem 5 bound, so any
   verifier can compare certificates from different notaries with a
   known tolerance.

We submit a stream of documents to all notaries while a mobile
Byzantine adversary rotates through them, then audit both properties
over the (Definition 3) good notaries — and contrast with free-running
clocks, which violate them after the first scramble.

Usage:
    python examples/timestamping.py
"""

from __future__ import annotations

from repro import default_params, mobile_byzantine_scenario, run
from repro.metrics.report import table
from repro.metrics.sampler import good_set


SUBMISSION_SPACING = 0.35  # real seconds between document submissions


def collect_certificates(result, warmup: float):
    """Timestamp every document at every notary good at submission time.

    Returns ``[(doc_index, submit_time, {notary: stamp})]``.
    """
    params = result.params
    certificates = []
    horizon = result.samples.times[-1]
    t = warmup
    doc = 0
    while t <= horizon:
        index = result.samples.index_at_or_before(t)
        good = good_set(result.corruptions, t, params.pi, params.n)
        stamps = {node: result.samples.clocks[node][index] for node in good}
        if len(stamps) >= 2:
            certificates.append((doc, t, stamps))
        doc += 1
        t += SUBMISSION_SPACING
    return certificates


def audit(certificates, tolerance):
    """Count violations of the two time-stamping properties."""
    inversions = comparability = 0
    for (_, t_a, stamps_a) in certificates:
        for (_, t_b, stamps_b) in certificates:
            if t_a <= t_b + tolerance:
                continue
            # A submitted after B (beyond tolerance): every notary good
            # for both must order them correctly.
            for node in stamps_a.keys() & stamps_b.keys():
                if stamps_a[node] <= stamps_b[node]:
                    inversions += 1
    for (_, _, stamps) in certificates:
        values = list(stamps.values())
        if max(values) - min(values) > tolerance:
            comparability += 1
    return inversions, comparability


def main() -> int:
    params = default_params(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0)
    tolerance = params.bounds().max_deviation
    warmup = 2.0
    print(f"Notary cluster n={params.n}, f={params.f}; documents every "
          f"{SUBMISSION_SPACING}s; comparability tolerance = Theorem 5 "
          f"bound = {tolerance:.4f}s.\n")

    rows = []
    for protocol in ("sync", "drift-only"):
        result = run(mobile_byzantine_scenario(params, duration=30.0, seed=33,
                                               protocol=protocol))
        certificates = collect_certificates(result, warmup)
        inversions, comparability = audit(certificates, tolerance)
        rows.append([protocol, len(certificates), inversions, comparability,
                     "SOUND" if inversions == comparability == 0 else "BROKEN"])

    print(table(
        ["clock layer", "documents", "time inversions",
         "incomparable certificates", "verdict"],
        rows,
        title="Time-stamping audit over good notaries (mobile Byzantine "
              "adversary active)",
    ))
    ok = rows[0][4] == "SOUND" and rows[1][4] == "BROKEN"
    print("\nSynchronized notaries never certify an inversion and always "
          "issue comparable stamps;\nfree-running notaries break both "
          "properties once a scrambled clock rejoins." if ok
          else "\nUnexpected outcome — inspect above.")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
