#!/usr/bin/env python3
"""The Section 5 counterexample, live: when connectivity is not enough.

The paper proves the full-mesh case and conjectures weaker topologies
suffice — but gives one explicit counterexample: two cliques of 3f+1
nodes joined by a perfect matching.  The graph is (3f+1)-connected,
yet each node hears 3f same-clique clocks and only ONE cross-clique
clock, so the f+1-st order statistics never let the single cross voice
move the clique.  With the cliques' hardware drifting in opposite
directions, they sail apart while each stays internally perfect.

This example runs the counterexample and the full-mesh control and
prints both gap trajectories side by side.

Usage:
    python examples/two_clique_failure.py
"""

from __future__ import annotations

import statistics

from repro import run, two_clique_scenario
from repro.metrics.report import table


def gaps(result, checkpoints):
    params = result.params
    half = params.n // 2
    rows = []
    for t in checkpoints:
        index = result.samples.index_at_or_before(t)
        c1 = [result.samples.clocks[i][index] for i in range(half)]
        c2 = [result.samples.clocks[i][index] for i in range(half, params.n)]
        rows.append((max(c1) - min(c1),
                     abs(statistics.mean(c1) - statistics.mean(c2))))
    return rows


def main() -> int:
    duration = 40.0
    checkpoints = [5.0, 10.0, 20.0, 30.0, 40.0]

    clique_run = run(two_clique_scenario(f=1, duration=duration, seed=6))
    mesh_scenario = two_clique_scenario(f=1, duration=duration, seed=6)
    mesh_scenario.topology = None  # same nodes, full mesh
    mesh_run = run(mesh_scenario)

    params = clique_run.params
    bound = params.bounds().max_deviation
    print(f"n = {params.n} (two cliques of {params.n // 2}, f = 1), "
          f"Theorem 5 deviation bound = {bound:.4f}s")
    print("Clique 1 drifts fast (+rho), clique 2 slow (-rho); "
          "each node has exactly one cross-clique link.\n")

    rows = []
    for t, (w1, gap_c), (_, gap_m) in zip(checkpoints,
                                          gaps(clique_run, checkpoints),
                                          gaps(mesh_run, checkpoints)):
        rows.append([t, w1, gap_c,
                     "DIVERGED" if gap_c > bound else "ok",
                     gap_m,
                     "ok" if gap_m <= bound else "DIVERGED"])
    print(table(
        ["time", "intra-clique dev", "two-clique gap", "", "full-mesh gap", ""],
        rows,
        title="Cross-clique clock gap: matching topology vs full mesh",
        precision=4,
    ))

    final_gap = rows[-1][2]
    print(f"\nOn the two-clique graph the gap reached {final_gap:.4f}s "
          f"({final_gap / bound:.1f}x the bound) and keeps growing at the "
          f"mutual drift rate;\nthe same clocks on a full mesh never exceeded "
          f"{max(r[4] for r in rows):.4f}s.")
    print("(3f+1)-connectivity alone is NOT sufficient for this protocol — "
          "exactly as Section 5 warns.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
