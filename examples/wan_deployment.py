#!/usr/bin/env python3
"""Capstone: a 'production' WAN deployment, everything composed.

One scenario exercising the whole library the way a deployment would:

* 10 processors across two sites — intra-site LAN links (fast), cross-
  site WAN links (slow) under one global ``delta``
  (:class:`~repro.net.links.HeterogeneousDelay`);
* 2% random message loss;
* min-of-3 round-trip estimation (the Section 3.1 / NTP optimization);
* the drift-compensating Sync extension;
* a rotating f-limited Byzantine adversary (f = 3) with the standard
  strategy mix;
* per-node health monitors watching the sync records;
* replication statistics: the headline deviation as mean ± 95% CI over
  seeds.

Usage:
    python examples/wan_deployment.py
"""

from __future__ import annotations

from repro import default_params, mobile_byzantine_scenario, run
from repro.metrics.report import check_mark, table
from repro.net.links import HeterogeneousDelay
from repro.protocols.drift_compensation import DriftCompensatingProcess
from repro.runner.builders import warmup_for
from repro.runner.stats import replicate_measure
from repro.service import SyncHealthMonitor


N, F = 10, 3
SEEDS = [1, 2, 3]


def site_classifier(delta):
    """Nodes 0-4 are site A, 5-9 site B: LAN within, WAN across."""

    def classify(a: int, b: int) -> tuple[float, float]:
        same_site = (a < N // 2) == (b < N // 2)
        if same_site:
            return (0.05 * delta, 0.15 * delta)
        return (0.6 * delta, delta)

    return classify


def build_scenario(params, seed, monitors):
    def factory(runtime, params_, start_phase):
        process = DriftCompensatingProcess(runtime, params_,
                                           start_phase=start_phase)
        process.pings_per_peer = 3  # min-of-k estimation on jittery WAN
        monitor = SyncHealthMonitor(params_, runtime.node_id)
        process.sync_listeners.append(monitor.on_sync)
        monitors[runtime.node_id] = monitor
        return process

    return mobile_byzantine_scenario(
        params, duration=20.0, seed=seed, protocol=factory,
        delay_model=HeterogeneousDelay(params.delta,
                                       classifier=site_classifier(params.delta)),
        loss_rate=0.02,
    )


def main() -> int:
    params = default_params(n=N, f=F, delta=0.01, rho=5e-4, pi=2.0)
    bounds = params.bounds()
    warmup = warmup_for(params)
    print(f"Two-site WAN deployment: n={N}, f={F}, global delta="
          f"{params.delta * 1000:.0f}ms (LAN ~1ms, WAN ~6-10ms), 2% loss,\n"
          f"min-of-3 estimation, drift compensation, rotating Byzantine "
          f"adversary.\n")

    monitors: dict[int, SyncHealthMonitor] = {}
    result = run(build_scenario(params, SEEDS[0], monitors))
    verdict = result.verdict(warmup=warmup)
    recovery = result.recovery()
    pct = result.deviation_percentiles(warmup)

    print(table(
        ["check", "measured", "bound", "holds"],
        [
            ["max deviation", verdict.measured_deviation,
             bounds.max_deviation, check_mark(verdict.deviation_ok)],
            ["p95 deviation", pct[95.0], bounds.max_deviation, "-"],
            ["logical drift", verdict.measured_drift, bounds.logical_drift,
             check_mark(verdict.drift_ok)],
            ["discontinuity", verdict.measured_discontinuity,
             bounds.discontinuity, check_mark(verdict.discontinuity_ok)],
            ["worst recovery", recovery.max_recovery_time, params.pi,
             check_mark(recovery.max_recovery_time < params.pi)],
        ],
        title=f"Run (seed {SEEDS[0]}): {len(result.corruptions)} corruption "
              f"episodes, {result.messages_delivered} messages",
        precision=4,
    ))

    alert_totals: dict[str, int] = {}
    for monitor in monitors.values():
        for kind, count in monitor.alert_counts().items():
            alert_totals[kind] = alert_totals.get(kind, 0) + count
    print(f"\nhealth alerts across the fleet: {alert_totals or 'none'}")
    print("(way-off alerts are the monitors noticing their own nodes "
          "recovering — advisory only,\n the protocol never consumes them)")

    print("\nReplicating the headline deviation over seeds "
          f"{SEEDS} ...")
    summary = replicate_measure(
        lambda seed: build_scenario(params, seed, {}),
        lambda r: r.max_deviation(warmup),
        seeds=SEEDS)
    print(f"max deviation = {summary} vs bound {bounds.max_deviation:.4f}")

    ok = verdict.all_ok and recovery.all_recovered \
        and summary.ci_high < bounds.max_deviation
    print("\nDeployment meets every Theorem 5 guarantee with margin."
          if ok else "\nGUARANTEE AT RISK — see above.")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
