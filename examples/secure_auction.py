#!/usr/bin/env python3
"""Bids with expiration dates: the paper's e-commerce motivation, live.

Section 1: "some security tasks require securely synchronized clocks by
their very definition, for example time-stamping and e-commerce
applications such as payments and bids with expiration dates."

This example runs a sealed-bid auction across a cluster whose clocks
are kept synchronized by Sync *while a mobile Byzantine adversary works
through the membership*.  Each replica independently decides, from its
own clock (applying the skew allowance that
:class:`repro.service.SecureTimeService` codifies), which bids arrived
before the deadline.  The security property at stake: **all
good replicas accept exactly the same set of bids** — a replica whose
clock an attacker had scrambled must not disagree about which bids made
the cut (that disagreement is how a malicious "late" bid gets accepted
by part of the cluster).

We check the property across many auction rounds, and contrast with the
same cluster running drift-only clocks, where scrambled clocks make
replicas disagree.

Usage:
    python examples/secure_auction.py
"""

from __future__ import annotations

from repro import default_params, mobile_byzantine_scenario, run
from repro.metrics.report import table
from repro.metrics.sampler import good_set


BID_TIMES = [0.15, 0.35, 0.48, 0.52, 0.71, 0.93]  # offsets into each round
ROUND_LEN = 1.0
DEADLINE = 0.6  # bids with issue clock < round_start + DEADLINE are on time


def auction_decisions(result, warmup: float):
    """Replay auction rounds over the sampled clocks.

    Round ``r`` has an absolute deadline at clock value
    ``r * ROUND_LEN + DEADLINE`` — deadlines live in the shared clock
    coordinate, which is the whole point of synchronized time.  Each
    replica accepts a bid iff, at the bid's arrival, the replica's own
    clock has not passed the deadline (plus the Theorem 5 skew allowance
    a correct implementation must grant).  Bids arrive everywhere at the
    same real time, isolating clock disagreement from network skew.

    Returns (#rounds checked, #rounds where good replicas disagreed).
    """
    params = result.params
    service_skew = params.bounds().max_deviation
    rounds = disagreements = 0
    horizon = result.samples.times[-1]
    round_no = int(warmup // ROUND_LEN) + 1
    while (round_no + 1) * ROUND_LEN <= horizon:
        round_start = round_no * ROUND_LEN
        deadline_clock = round_start + DEADLINE
        good = good_set(result.corruptions, round_start + ROUND_LEN,
                        params.pi, params.n)
        if len(good) >= 2:
            verdicts = {}
            for node in good:
                accepted = []
                for k, offset in enumerate(BID_TIMES):
                    index = result.samples.index_at_or_before(round_start + offset)
                    clock_at_bid = result.samples.clocks[node][index]
                    if clock_at_bid <= deadline_clock + service_skew:
                        accepted.append(k)
                verdicts[node] = tuple(accepted)
            rounds += 1
            if len(set(verdicts.values())) > 1:
                disagreements += 1
        round_no += 1
    return rounds, disagreements


def main() -> int:
    params = default_params(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0)
    warmup = 2.0
    duration = 30.0
    print(f"Auction rounds of {ROUND_LEN}s, deadline at {DEADLINE}s, "
          f"{len(BID_TIMES)} bids per round;")
    print(f"skew allowance = Theorem 5 bound = "
          f"{params.bounds().max_deviation:.4f}s; rotating Byzantine "
          f"adversary throughout.\n")

    rows = []
    for protocol in ("sync", "drift-only"):
        result = run(mobile_byzantine_scenario(params, duration=duration,
                                               seed=21, protocol=protocol))
        rounds, disagreements = auction_decisions(result, warmup)
        rows.append([protocol, rounds, disagreements,
                     "CONSISTENT" if disagreements == 0 else "SPLIT DECISIONS"])

    print(table(
        ["clock layer", "auction rounds", "rounds with disagreement", "verdict"],
        rows,
        title="Do all good replicas accept the same bid set?",
    ))

    ok = rows[0][2] == 0 and rows[1][2] > 0
    print("\nWith Sync, every good replica reaches the same accept/reject "
          "decision in every round,\neven right after recovering from a "
          "break-in; with free-running clocks, scrambled\nreplicas "
          "disagree — the attack the paper's 'secure time' exists to prevent."
          if ok else "\nUnexpected outcome — inspect above.")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
