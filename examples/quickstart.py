#!/usr/bin/env python3
"""Quickstart: synchronize 7 clocks through a mobile Byzantine adversary.

Runs the paper's headline scenario — n = 7 processors, at most f = 2
faulty per time period PI, an adversary that rotates through *every*
processor with a mix of Byzantine behaviours — and prints the Theorem 5
verdict: measured deviation, drift, and discontinuity against the
theoretical bounds.

Usage:
    python examples/quickstart.py [seed]
"""

from __future__ import annotations

import sys

from repro import default_params, mobile_byzantine_scenario, run
from repro.metrics.report import check_mark, table
from repro.runner.builders import warmup_for


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    params = default_params(n=7, f=2, delta=0.005, rho=5e-4, pi=2.0)
    bounds = params.bounds()
    print("Parameters (Section 3.2):")
    print(table(
        ["param", "value"],
        [
            ["n (processors)", params.n],
            ["f (faults per PI)", params.f],
            ["delta (delivery bound)", params.delta],
            ["rho (drift bound)", params.rho],
            ["PI (adversary period)", params.pi],
            ["SyncInt", params.sync_interval],
            ["MaxWait", params.max_wait],
            ["WayOff", params.way_off],
            ["T (analysis interval)", bounds.t_interval],
            ["K = floor(PI/T)", bounds.k],
        ],
        precision=5,
    ))

    print("\nRunning 20 simulated seconds with a rotating f-limited "
          "Byzantine adversary...")
    result = run(mobile_byzantine_scenario(params, duration=20.0, seed=seed))

    episodes = len(result.corruptions)
    corrupted = sorted({c.node for c in result.corruptions})
    print(f"  {result.events_processed} events, "
          f"{result.messages_delivered} messages delivered")
    print(f"  {episodes} corruption episodes; nodes corrupted: {corrupted}")

    verdict = result.verdict(warmup=warmup_for(params))
    recovery = result.recovery()
    print("\nTheorem 5 verdict:")
    print(table(
        ["guarantee", "measured", "bound", "holds"],
        [
            ["max deviation (5.i)", verdict.measured_deviation,
             verdict.bounds.max_deviation, check_mark(verdict.deviation_ok)],
            ["logical drift (5.ii)", verdict.measured_drift,
             verdict.bounds.logical_drift, check_mark(verdict.drift_ok)],
            ["discontinuity (5.ii)", verdict.measured_discontinuity,
             verdict.bounds.discontinuity, check_mark(verdict.discontinuity_ok)],
        ],
        precision=4,
    ))
    print(f"\nRecovery: {len(recovery.events)} releases, "
          f"all recovered: {recovery.all_recovered}, "
          f"worst recovery time: {recovery.max_recovery_time:.3f}s "
          f"(PI = {params.pi}s)")

    ok = verdict.all_ok and recovery.all_recovered
    print("\n" + ("All guarantees held." if ok else "GUARANTEE VIOLATION — see above."))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
