#!/usr/bin/env python3
"""Figure 3, live: the (tau, beta)-plane of an actual recovery.

The paper's only evaluation-style figure is the envelope diagram of
Appendix A (Figure 3) — drawn by hand, for the proof.  This example
renders the real thing from a simulation: the bias trajectories of all
processors around a corruption episode, showing the victim's bias
collapsing back into the good envelope geometrically, plus the good-set
deviation strip chart against the Theorem 5 bound.

Usage:
    python examples/figure3_live.py [displacement_multiple_of_wayoff]
"""

from __future__ import annotations

import sys

from repro import default_params, recovery_scenario, run
from repro.core.analysis import recovery_trajectory
from repro.metrics.plots import bias_plane, sparkline, strip_chart


def main() -> int:
    factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.9
    params = default_params(n=7, f=2, pi=2.0)
    displacement = factor * params.way_off
    scenario = recovery_scenario(params, duration=6.0, seed=17, victims=[0],
                                 displacement=displacement)
    result = run(scenario)

    release = result.corruptions[0].end
    print(f"n={params.n}, f={params.f}; node 0 corrupted during "
          f"[{result.corruptions[0].start:.2f}, {release:.2f}], clock "
          f"displaced by {displacement:.3f}s ({factor:g} x WayOff).\n")

    lo = result.samples.index_at_or_after(max(0.0, release - 0.5))
    hi = result.samples.index_at_or_before(min(6.0, release + 3.0)) + 1
    print(bias_plane(
        result.samples, nodes=list(range(params.n)), lo_index=lo, hi_index=hi,
        title="Bias plane around the release (glyph = node id; node 0 recovers):",
        height=14,
    ))

    event = result.recovery().events[0]
    trajectory = recovery_trajectory(result.samples, result.corruptions,
                                     params, 0, release, intervals=10)
    distances = [step.distance for step in trajectory]
    print("\nnode 0 distance to good range at interval ends "
          f"(T = {params.t_interval:.3g}s):")
    print("  " + "  ".join(f"{d:.4f}" for d in distances))
    print("  sparkline: " + sparkline(distances))
    print(f"  stably rejoined at t = {event.rejoined_at:.3f}s "
          f"({event.recovery_time:.3f}s after release; PI = {params.pi}s)")

    print("\nGood-set deviation over the whole run:")
    print(strip_chart(result.deviation_series(), width=64, height=8,
                      hline=params.bounds().max_deviation,
                      hline_label="Thm 5 bound"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
